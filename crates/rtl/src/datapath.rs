//! The complete on-chip BIST datapath, cycle-accurate.
//!
//! Two blocks from the paper:
//!
//! * [`LsbProcessor`] — Figure 4: deglitch → edge detect → sample counter
//!   → DNL window comparator → INL accumulator. At every LSB transition
//!   the counter value (the measured code width in samples) is judged
//!   against `i_min..=i_max` and folded into the INL running sum.
//! * [`UpperBitChecker`] — Figure 2: the remaining bits (`q+1..MSB`) are
//!   compared against an internal counter clocked by the falling edge of
//!   the monitored bit, verifying converter functionality with no
//!   external data.
//!
//! Both blocks tick once per ADC sample clock. Their behaviour is
//! cross-validated against the behavioural accumulators of `bist-core`
//! at three levels: unit/property tests on synthetic bit streams here
//! and in `bist-core`, the seam proptests in `crates/core/tests`, and —
//! at fleet scale — the `bist-mc` differential experiment (driven by
//! the `rtl_fleet` bench binary and the CI smoke step), which runs the
//! full `BistTop` as a drop-in verdict backend over thousands of random
//! devices and asserts bit-exact verdict agreement.

use crate::accumulator::Accumulator;
use crate::counter::Counter;
use crate::deglitch::Deglitcher;
use crate::edge::EdgeDetector;
use crate::logic::Bus;
use crate::window_compare::{WindowComparator, WindowVerdict};
use std::fmt;

/// One completed code-width measurement emitted at an LSB transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeMeasurement {
    /// Sequence number of the measurement (0 = first *complete* code).
    pub index: u64,
    /// Measured width in samples (`i` of the paper).
    pub count: u64,
    /// Whether the counter saturated during this code (width
    /// unmeasurable but certainly beyond the window).
    pub overflow: bool,
    /// DNL window verdict for this code.
    pub dnl_verdict: WindowVerdict,
    /// INL accumulator value after this code, in counter units.
    pub inl_counts: i64,
    /// Whether the INL value is within the configured INL window.
    pub inl_pass: bool,
}

/// Static configuration of the LSB-processing block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsbProcessorConfig {
    /// Counter width in bits (the paper sweeps 4–7).
    pub counter_bits: u32,
    /// DNL window lower limit `i_min` (Eq. 3).
    pub i_min: u64,
    /// DNL window upper limit `i_max` (Eq. 4).
    pub i_max: u64,
    /// Nominal (ideal) counts per code, used as the DNL reference for
    /// INL accumulation.
    pub i_ideal: u64,
    /// INL window half-width in counter units; `None` disables the INL
    /// check.
    pub inl_limit_counts: Option<u64>,
    /// Whether the 3-tap majority deglitcher is in the LSB path.
    pub deglitch: bool,
}

impl LsbProcessorConfig {
    /// The largest count a `counter_bits`-bit counter can measure: the
    /// counter stores `count − 1` and saturates at `2^k − 1`, so counts
    /// up to `2^k` are representable.
    pub fn capacity(&self) -> u64 {
        1u64 << self.counter_bits
    }

    /// Validates and freezes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `i_min > i_max`, `counter_bits` is outside `1..=32`,
    /// or `i_max` exceeds the counter capacity `2^counter_bits` — an
    /// unreachable window ceiling would silently turn every saturated
    /// (certainly-too-wide) code into a false DNL failure of a window
    /// the hardware can never evaluate.
    pub fn validate(self) -> Self {
        assert!(
            (1..=32).contains(&self.counter_bits),
            "counter width must be 1..=32"
        );
        assert!(self.i_min <= self.i_max, "i_min must not exceed i_max");
        assert!(
            self.i_max <= self.capacity(),
            "i_max ({}) exceeds the {}-bit counter capacity ({})",
            self.i_max,
            self.counter_bits,
            self.capacity()
        );
        self
    }
}

/// The Figure-4 LSB-processing block.
///
/// Tick once per sample with the raw LSB level; a [`CodeMeasurement`] is
/// produced at each LSB transition after the first. The first transition
/// only aligns the counter (the preceding partial code is not judged —
/// the harness also drops end codes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsbProcessor {
    config: LsbProcessorConfig,
    deglitcher: Deglitcher,
    edges: EdgeDetector,
    counter: Counter,
    comparator: WindowComparator,
    inl: Accumulator,
    seen_first_edge: bool,
    measurements_emitted: u64,
    dnl_failures: u64,
    inl_failures: u64,
    /// Input hold register: the last raw sample, recirculated during
    /// drain cycles on the unfiltered path.
    last_raw: bool,
}

impl LsbProcessor {
    /// Builds the block from a validated configuration.
    pub fn new(config: LsbProcessorConfig) -> Self {
        let config = config.validate();
        LsbProcessor {
            config,
            deglitcher: Deglitcher::new(),
            edges: EdgeDetector::new(),
            counter: Counter::new(config.counter_bits),
            comparator: WindowComparator::new(config.i_min, config.i_max),
            // INL accumulator sized to cover the worst swing with margin:
            // 16-bit signed is beyond any counter the paper considers.
            inl: Accumulator::new(16),
            seen_first_edge: false,
            measurements_emitted: 0,
            dnl_failures: 0,
            inl_failures: 0,
            last_raw: false,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &LsbProcessorConfig {
        &self.config
    }

    /// Clocks the block with this sample's LSB level. Returns a
    /// measurement when a code completed this cycle.
    pub fn tick(&mut self, lsb: bool) -> Option<CodeMeasurement> {
        self.last_raw = lsb;
        let filtered = if self.config.deglitch {
            self.deglitcher.tick(lsb)
        } else {
            lsb
        };
        self.clock(filtered)
    }

    /// Drain cycle at the end of a sweep: clocks the block without new
    /// input, recirculating the deglitcher output (or the input hold
    /// register on the unfiltered path). Drain cycles let transitions
    /// already inside the synchroniser pipeline complete their
    /// measurement, but — because recirculation never flips the
    /// filtered level — can never judge a code the stream itself did
    /// not close.
    pub fn drain_tick(&mut self) -> Option<CodeMeasurement> {
        let filtered = if self.config.deglitch {
            self.deglitcher.hold()
        } else {
            self.last_raw
        };
        self.clock(filtered)
    }

    /// The post-filter datapath: edge detect → counter → window
    /// comparator → INL accumulation.
    fn clock(&mut self, filtered: bool) -> Option<CodeMeasurement> {
        let e = self.edges.tick(filtered);
        if !e.any() {
            // Mid-code sample: count it (the edge-cycle sample itself is
            // accounted for by reporting counter+1 at the next edge).
            if self.seen_first_edge {
                self.counter.tick(true, false);
            }
            return None;
        }
        // An LSB transition: the previous code is complete.
        if !self.seen_first_edge {
            self.seen_first_edge = true;
            self.counter.tick(false, true);
            return None;
        }
        let raw = self.counter.value().value();
        let overflow = self.counter.overflowed();
        // The sample *at* the transition cycle belongs to the new code;
        // the previous code spanned the edge-to-edge gap = counter + 1.
        let count = raw + 1;
        let dnl_verdict = self
            .comparator
            .compare_bus(Bus::truncate(64, count), overflow);
        if !dnl_verdict.is_pass() {
            self.dnl_failures += 1;
        }
        let inl_counts = self.inl.add(count as i64 - self.config.i_ideal as i64);
        let inl_pass = match self.config.inl_limit_counts {
            Some(limit) => !self.inl.saturated() && inl_counts.unsigned_abs() <= limit,
            None => true,
        };
        if !inl_pass {
            self.inl_failures += 1;
        }
        let m = CodeMeasurement {
            index: self.measurements_emitted,
            count,
            overflow,
            dnl_verdict,
            inl_counts,
            inl_pass,
        };
        self.measurements_emitted += 1;
        self.counter.tick(false, true);
        Some(m)
    }

    /// Number of completed code measurements so far.
    pub fn measurements(&self) -> u64 {
        self.measurements_emitted
    }

    /// Number of DNL window failures so far.
    pub fn dnl_failures(&self) -> u64 {
        self.dnl_failures
    }

    /// Number of INL window failures so far.
    pub fn inl_failures(&self) -> u64 {
        self.inl_failures
    }

    /// Whether every judged code passed both windows.
    pub fn all_pass(&self) -> bool {
        self.dnl_failures == 0 && self.inl_failures == 0
    }

    /// Resets all sequential state for a new run, in place — no
    /// component is reconstructed (the deglitcher's tap register keeps
    /// its storage), so a batch screener can reuse one processor across
    /// devices without per-device heap traffic.
    pub fn reset(&mut self) {
        self.deglitcher.clear();
        self.edges.clear();
        self.counter = Counter::new(self.config.counter_bits);
        self.inl.clear();
        self.seen_first_edge = false;
        self.measurements_emitted = 0;
        self.dnl_failures = 0;
        self.inl_failures = 0;
        self.last_raw = false;
    }
}

impl fmt::Display for LsbProcessor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LSB processor: {} codes, {} DNL fails, {} INL fails",
            self.measurements_emitted, self.dnl_failures, self.inl_failures
        )
    }
}

/// The Figure-2 upper-bit functional checker.
///
/// The bits above the monitored bit are registered through the same
/// two-stage synchroniser latency as the LSB path, then compared against
/// an expected value that increments at each falling LSB edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpperBitChecker {
    edges: EdgeDetector,
    /// Two alignment registers matching the LSB synchroniser latency.
    align0: Bus,
    align1: Bus,
    expected: Option<Bus>,
    mismatches: u64,
    checks: u64,
}

impl UpperBitChecker {
    /// Creates a checker for `width`-bit upper words.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 63.
    pub fn new(width: u32) -> Self {
        assert!((1..=63).contains(&width), "width must be 1..=63");
        UpperBitChecker {
            edges: EdgeDetector::new(),
            align0: Bus::zero(width),
            align1: Bus::zero(width),
            expected: None,
            mismatches: 0,
            checks: 0,
        }
    }

    /// Clocks the checker with this sample's monitored-bit level and
    /// upper word. Returns `Some(ok)` when a check fired this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `upper` has a different width than configured.
    pub fn tick(&mut self, monitored_bit: bool, upper: Bus) -> Option<bool> {
        assert_eq!(
            upper.width(),
            self.align0.width(),
            "upper word width changed"
        );
        let e = self.edges.tick(monitored_bit);
        // Align the upper word with the synchronised LSB (2 cycles).
        let aligned = self.align1;
        self.align1 = self.align0;
        self.align0 = upper;
        if !e.falling {
            return None;
        }
        match self.expected {
            None => {
                // First falling edge: adopt the current upper word.
                self.expected = Some(aligned);
                None
            }
            Some(prev) => {
                let want = prev.wrapping_add(1);
                self.checks += 1;
                let ok = aligned == want;
                if !ok {
                    self.mismatches += 1;
                }
                // Resynchronise so one error does not cascade.
                self.expected = Some(aligned);
                Some(ok)
            }
        }
    }

    /// Number of comparisons performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of mismatches observed.
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }

    /// Whether all comparisons matched.
    pub fn all_pass(&self) -> bool {
        self.mismatches == 0
    }
}

impl fmt::Display for UpperBitChecker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "upper-bit checker: {}/{} mismatches",
            self.mismatches, self.checks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(bits: u32, i_min: u64, i_max: u64, i_ideal: u64) -> LsbProcessorConfig {
        LsbProcessorConfig {
            counter_bits: bits,
            i_min,
            i_max,
            i_ideal,
            inl_limit_counts: None,
            deglitch: false,
        }
    }

    /// An LSB stream with the given run lengths (alternating levels,
    /// starting low).
    fn lsb_stream(runs: &[u64]) -> Vec<bool> {
        let mut out = Vec::new();
        let mut level = false;
        for &r in runs {
            for _ in 0..r {
                out.push(level);
            }
            level = !level;
        }
        out
    }

    fn run_processor(
        cfg: LsbProcessorConfig,
        bits: &[bool],
    ) -> (LsbProcessor, Vec<CodeMeasurement>) {
        let mut p = LsbProcessor::new(cfg);
        let mut out = Vec::new();
        for &b in bits {
            if let Some(m) = p.tick(b) {
                out.push(m);
            }
        }
        (p, out)
    }

    #[test]
    fn measures_run_lengths_exactly() {
        // Runs: 5 (partial, dropped), then 10, 11, 9 complete codes, then
        // 8 (unterminated, not emitted).
        let bits = lsb_stream(&[5, 10, 11, 9, 8]);
        let (p, ms) = run_processor(config(6, 1, 63, 10), &bits);
        let counts: Vec<u64> = ms.iter().map(|m| m.count).collect();
        assert_eq!(counts, vec![10, 11, 9]);
        assert_eq!(p.measurements(), 3);
    }

    #[test]
    fn dnl_window_flags_outliers() {
        let bits = lsb_stream(&[4, 10, 16, 5, 10, 3]);
        // Window 6..=15: 16 is too wide, 5 too narrow, 10s pass.
        let (p, ms) = run_processor(config(6, 6, 15, 10), &bits);
        let verdicts: Vec<WindowVerdict> = ms.iter().map(|m| m.dnl_verdict).collect();
        assert_eq!(
            verdicts,
            vec![
                WindowVerdict::Pass,
                WindowVerdict::TooWide,
                WindowVerdict::TooNarrow,
                WindowVerdict::Pass,
            ]
        );
        assert_eq!(p.dnl_failures(), 2);
        assert!(!p.all_pass());
    }

    #[test]
    fn counter_overflow_reports_too_wide() {
        // 4-bit counter saturates at 15; a 40-sample code overflows. The
        // final run must exceed the 2-cycle synchroniser latency for the
        // 10-run's closing edge to be observed.
        let bits = lsb_stream(&[3, 40, 10, 4]);
        let (_, ms) = run_processor(config(4, 1, 16, 10), &bits);
        assert!(ms[0].overflow);
        assert_eq!(ms[0].dnl_verdict, WindowVerdict::TooWide);
        // The next code is measured correctly after the overflow.
        assert_eq!(ms[1].count, 10);
        assert!(!ms[1].overflow);
    }

    #[test]
    fn inl_accumulates_dnl_residuals() {
        let bits = lsb_stream(&[4, 12, 8, 10, 11, 4]);
        let mut cfg = config(6, 1, 63, 10);
        cfg.inl_limit_counts = Some(3);
        let (_, ms) = run_processor(cfg, &bits);
        let inls: Vec<i64> = ms.iter().map(|m| m.inl_counts).collect();
        // Residuals vs ideal 10: +2, −2, 0, +1 → cumulative 2, 0, 0, 1.
        assert_eq!(inls, vec![2, 0, 0, 1]);
        assert!(ms.iter().all(|m| m.inl_pass));
    }

    #[test]
    fn inl_window_fails_on_drift() {
        // Codes persistently 12 wide vs ideal 10: INL drifts +2 per code.
        let bits = lsb_stream(&[4, 12, 12, 12, 12, 4]);
        let mut cfg = config(6, 1, 63, 10);
        cfg.inl_limit_counts = Some(5);
        let (p, ms) = run_processor(cfg, &bits);
        assert!(ms[0].inl_pass); // +2
        assert!(ms[1].inl_pass); // +4
        assert!(!ms[2].inl_pass); // +6 > 5
        assert_eq!(p.inl_failures(), 2); // codes 3 and 4
    }

    #[test]
    fn deglitcher_absorbs_transition_noise() {
        // A bouncing transition: without deglitch it yields spurious
        // short codes; with deglitch, one clean transition.
        let mut bits = lsb_stream(&[4, 10]);
        // Splice a bounce into the rising transition.
        bits.insert(4, true);
        bits.insert(5, false);
        let cfg_raw = config(6, 6, 15, 10);
        let (p_raw, _) = run_processor(cfg_raw, &bits);
        let mut cfg_filt = cfg_raw;
        cfg_filt.deglitch = true;
        let (p_filt, _) = run_processor(cfg_filt, &bits);
        assert!(p_raw.measurements() > p_filt.measurements());
        assert!(p_filt.all_pass() || p_filt.measurements() == 0);
    }

    #[test]
    fn reset_clears_state() {
        let bits = lsb_stream(&[4, 10, 10, 2]);
        let (mut p, _) = run_processor(config(6, 6, 15, 10), &bits);
        assert!(p.measurements() > 0);
        p.reset();
        assert_eq!(p.measurements(), 0);
        assert_eq!(p.dnl_failures(), 0);
        // In-place reset is indistinguishable from a fresh build.
        assert_eq!(p, LsbProcessor::new(config(6, 6, 15, 10)));
    }

    #[test]
    #[should_panic(expected = "i_min must not exceed i_max")]
    fn invalid_window_panics() {
        LsbProcessor::new(config(6, 10, 5, 7));
    }

    #[test]
    #[should_panic(expected = "exceeds the 4-bit counter capacity")]
    fn unreachable_window_ceiling_panics() {
        // A 4-bit counter measures counts up to 16; i_max = 17 could
        // never pass a code that wide (it saturates → "too wide").
        LsbProcessor::new(config(4, 1, 17, 10));
    }

    #[test]
    fn ceiling_at_exact_capacity_is_reachable() {
        // A run of exactly 2^k samples is the widest measurable code:
        // the counter tops out without raising overflow, and the window
        // may legally accept it.
        let bits = lsb_stream(&[3, 16, 10, 4]);
        let (_, ms) = run_processor(config(4, 1, 16, 10), &bits);
        assert_eq!(ms[0].count, 16);
        assert!(!ms[0].overflow);
        assert_eq!(ms[0].dnl_verdict, WindowVerdict::Pass);
    }

    #[test]
    fn drain_completes_pending_final_measurement() {
        // The stream ends exactly at the closing transition of the last
        // code: without drain cycles the 2-cycle synchroniser never
        // reports it.
        let bits = lsb_stream(&[4, 10, 12]);
        let mut with_drain = LsbProcessor::new(config(6, 1, 64, 10));
        let mut without = LsbProcessor::new(config(6, 1, 64, 10));
        let mut bits_plus_edge = bits.clone();
        bits_plus_edge.push(!*bits.last().unwrap()); // closing edge
        for &b in &bits_plus_edge {
            with_drain.tick(b);
            without.tick(b);
        }
        assert_eq!(without.measurements(), 1, "edge still in the pipeline");
        let mut drained = Vec::new();
        for _ in 0..3 {
            if let Some(m) = with_drain.drain_tick() {
                drained.push(m);
            }
        }
        assert_eq!(with_drain.measurements(), 2);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].count, 12);
        // Further drain cycles judge nothing: recirculation is inert.
        for _ in 0..10 {
            assert!(with_drain.drain_tick().is_none());
        }
    }

    // --- UpperBitChecker ---

    /// Builds (lsb, upper) sample pairs for a clean binary count through
    /// `codes`, `per_code` samples each.
    fn code_walk(codes: &[u32], per_code: usize, upper_width: u32) -> Vec<(bool, Bus)> {
        let mut out = Vec::new();
        for &c in codes {
            for _ in 0..per_code {
                out.push((c & 1 == 1, Bus::truncate(upper_width, (c >> 1) as u64)));
            }
        }
        out
    }

    #[test]
    fn clean_count_passes() {
        let codes: Vec<u32> = (0..32).collect();
        let mut chk = UpperBitChecker::new(5);
        for (lsb, upper) in code_walk(&codes, 8, 5) {
            chk.tick(lsb, upper);
        }
        assert!(chk.checks() > 10, "checks {}", chk.checks());
        assert!(chk.all_pass(), "{chk}");
    }

    #[test]
    fn stuck_upper_bit_detected() {
        let codes: Vec<u32> = (0..32).collect();
        let mut chk = UpperBitChecker::new(5);
        for (lsb, upper) in code_walk(&codes, 8, 5) {
            // Upper bit 2 stuck at 0 (i.e. code bit 3).
            let faulty = upper.with_bit(2, false);
            chk.tick(lsb, faulty);
        }
        assert!(!chk.all_pass());
        assert!(chk.mismatches() >= 2, "mismatches {}", chk.mismatches());
    }

    #[test]
    fn skipped_code_detected() {
        // The sequence jumps 4 → 6 (code 5's upper word never appears as
        // expected at the 5→6 boundary... the jump breaks +1 continuity).
        let codes = [0u32, 1, 2, 3, 4, 6, 7, 8, 9];
        let mut chk = UpperBitChecker::new(5);
        for (lsb, upper) in code_walk(&codes, 8, 5) {
            chk.tick(lsb, upper);
        }
        assert_eq!(chk.mismatches(), 1);
    }

    #[test]
    fn checker_resynchronises_after_error() {
        // One glitch then clean counting: exactly one mismatch.
        let codes = [0u32, 1, 2, 3, 12, 13, 14, 15, 16, 17];
        let mut chk = UpperBitChecker::new(5);
        for (lsb, upper) in code_walk(&codes, 8, 5) {
            chk.tick(lsb, upper);
        }
        assert_eq!(chk.mismatches(), 1, "{chk}");
    }

    #[test]
    #[should_panic(expected = "width changed")]
    fn width_mismatch_panics() {
        let mut chk = UpperBitChecker::new(5);
        chk.tick(false, Bus::zero(4));
    }

    #[test]
    fn displays() {
        let p = LsbProcessor::new(config(6, 1, 63, 10));
        assert!(p.to_string().contains("LSB processor"));
        let c = UpperBitChecker::new(3);
        assert!(c.to_string().contains("checker"));
    }
}
