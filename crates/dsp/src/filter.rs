//! Simple digital filters.
//!
//! §3 of the paper notes that comparator *transition noise* makes the LSB
//! toggle around a code edge, and that "toggles in the LSB can be removed
//! by means of a simple digital filter". The [`MajorityVote`] filter here
//! is the behavioural reference for the RTL deglitcher in `bist-rtl`;
//! the numeric filters support stimulus conditioning and analysis.

use std::collections::VecDeque;

/// Fixed-length moving-average filter.
///
/// # Examples
///
/// ```
/// use bist_dsp::filter::MovingAverage;
///
/// let mut f = MovingAverage::new(4);
/// let ys: Vec<f64> = [4.0, 4.0, 4.0, 4.0].iter().map(|&x| f.push(x)).collect();
/// assert_eq!(ys[3], 4.0); // fully primed
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MovingAverage {
    window: VecDeque<f64>,
    len: usize,
    sum: f64,
}

impl MovingAverage {
    /// Creates a filter averaging the last `len` samples.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "moving average length must be non-zero");
        MovingAverage {
            window: VecDeque::with_capacity(len),
            len,
            sum: 0.0,
        }
    }

    /// Pushes a sample and returns the current average (over however many
    /// samples have been seen, up to the window length).
    pub fn push(&mut self, x: f64) -> f64 {
        if self.window.len() == self.len {
            if let Some(old) = self.window.pop_front() {
                self.sum -= old;
            }
        }
        self.window.push_back(x);
        self.sum += x;
        self.sum / self.window.len() as f64
    }

    /// Number of samples currently in the window.
    pub fn fill(&self) -> usize {
        self.window.len()
    }

    /// Clears the window.
    pub fn reset(&mut self) {
        self.window.clear();
        self.sum = 0.0;
    }
}

/// Odd-length streaming median filter (useful against impulsive noise).
#[derive(Debug, Clone, PartialEq)]
pub struct MedianFilter {
    window: VecDeque<f64>,
    len: usize,
}

impl MedianFilter {
    /// Creates a median filter over the last `len` samples.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or even.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "median length must be non-zero");
        assert!(len % 2 == 1, "median length must be odd");
        MedianFilter {
            window: VecDeque::with_capacity(len),
            len,
        }
    }

    /// Pushes a sample and returns the median of the current window.
    pub fn push(&mut self, x: f64) -> f64 {
        if self.window.len() == self.len {
            self.window.pop_front();
        }
        self.window.push_back(x);
        let mut sorted: Vec<f64> = self.window.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("median input must not be NaN"));
        sorted[sorted.len() / 2]
    }
}

/// Single-pole IIR low-pass: `y += α(x − y)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinglePoleIir {
    alpha: f64,
    state: f64,
    primed: bool,
}

impl SinglePoleIir {
    /// Creates the filter with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        SinglePoleIir {
            alpha,
            state: 0.0,
            primed: false,
        }
    }

    /// Pushes a sample and returns the filtered output. The first sample
    /// initialises the state directly (no start-up transient).
    pub fn push(&mut self, x: f64) -> f64 {
        if !self.primed {
            self.state = x;
            self.primed = true;
        } else {
            self.state += self.alpha * (x - self.state);
        }
        self.state
    }

    /// Current filter state.
    pub fn state(&self) -> f64 {
        self.state
    }
}

/// Majority-vote deglitcher over a sliding window of bits.
///
/// The behavioural counterpart of the on-chip LSB deglitch filter: the
/// output is 1 when more than half the last `len` raw bits are 1. With
/// `len = 3` an isolated single-sample toggle (the transition-noise
/// glitch of §3) is suppressed while genuine transitions pass with one
/// sample of latency.
///
/// # Examples
///
/// ```
/// use bist_dsp::filter::MajorityVote;
///
/// let mut f = MajorityVote::new(3);
/// // A clean 0→1 transition passes (delayed), an isolated glitch does not.
/// let out: Vec<bool> = [false, false, true, false, false, true, true, true]
///     .iter()
///     .map(|&b| f.push(b))
///     .collect();
/// assert!(!out[3]); // glitch at index 2 suppressed
/// assert!(out[7]); // sustained high accepted
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MajorityVote {
    window: VecDeque<bool>,
    len: usize,
    ones: usize,
}

impl MajorityVote {
    /// Creates a voter over the last `len` bits (odd, non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or even.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "window length must be non-zero");
        assert!(len % 2 == 1, "window length must be odd");
        MajorityVote {
            window: VecDeque::with_capacity(len),
            len,
            ones: 0,
        }
    }

    /// Pushes a raw bit and returns the voted output. While the window is
    /// filling, the vote is taken over the bits seen so far (ties → false).
    pub fn push(&mut self, bit: bool) -> bool {
        if self.window.len() == self.len {
            if let Some(old) = self.window.pop_front() {
                if old {
                    self.ones -= 1;
                }
            }
        }
        self.window.push_back(bit);
        if bit {
            self.ones += 1;
        }
        2 * self.ones > self.window.len()
    }

    /// Filters an entire bit sequence, returning the voted sequence.
    pub fn filter_sequence(len: usize, bits: &[bool]) -> Vec<bool> {
        let mut f = MajorityVote::new(len);
        bits.iter().map(|&b| f.push(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_ramps_up() {
        let mut f = MovingAverage::new(3);
        assert_eq!(f.push(3.0), 3.0);
        assert_eq!(f.push(6.0), 4.5);
        assert_eq!(f.push(9.0), 6.0);
        assert_eq!(f.push(12.0), 9.0); // window [6,9,12]
        assert_eq!(f.fill(), 3);
    }

    #[test]
    fn moving_average_reset() {
        let mut f = MovingAverage::new(2);
        f.push(10.0);
        f.reset();
        assert_eq!(f.fill(), 0);
        assert_eq!(f.push(4.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn moving_average_zero_len_panics() {
        MovingAverage::new(0);
    }

    #[test]
    fn median_rejects_impulse() {
        let mut f = MedianFilter::new(3);
        f.push(1.0);
        f.push(1.0);
        assert_eq!(f.push(100.0), 1.0); // impulse outvoted
        assert_eq!(f.push(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn median_even_len_panics() {
        MedianFilter::new(4);
    }

    #[test]
    fn iir_converges_to_dc() {
        let mut f = SinglePoleIir::new(0.25);
        let mut y = 0.0;
        for _ in 0..100 {
            y = f.push(2.0);
        }
        assert!((y - 2.0).abs() < 1e-9);
    }

    #[test]
    fn iir_first_sample_primes_state() {
        let mut f = SinglePoleIir::new(0.1);
        assert_eq!(f.push(5.0), 5.0);
        assert_eq!(f.state(), 5.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn iir_bad_alpha_panics() {
        SinglePoleIir::new(1.5);
    }

    #[test]
    fn majority_vote_suppresses_isolated_glitch() {
        // Steady low with one glitch high: output never goes high.
        let bits = [false, false, false, true, false, false, false];
        let out = MajorityVote::filter_sequence(3, &bits);
        assert!(out.iter().all(|&b| !b), "{out:?}");
    }

    #[test]
    fn majority_vote_suppresses_glitch_low() {
        // Steady high with one glitch low: output stays high once primed.
        let bits = [true, true, true, false, true, true, true];
        let out = MajorityVote::filter_sequence(3, &bits);
        assert!(out[2..].iter().all(|&b| b), "{out:?}");
    }

    #[test]
    fn majority_vote_passes_transition_with_latency() {
        let bits = [false, false, false, true, true, true, true];
        let out = MajorityVote::filter_sequence(3, &bits);
        // Transition at raw index 3 appears at voted index 4 (latency 1).
        assert!(!out[3]);
        assert!(out[4]);
    }

    #[test]
    fn majority_vote_five_tap_needs_three_ones() {
        let mut f = MajorityVote::new(5);
        for _ in 0..5 {
            f.push(false);
        }
        assert!(!f.push(true));
        assert!(!f.push(true));
        assert!(f.push(true)); // 3 of last 5
    }

    #[test]
    fn majority_vote_bouncing_edge_resolves_cleanly() {
        // A noisy edge: 0 0 1 0 1 1 0 1 1 1 — the filter should emit a
        // single clean transition with no output glitches.
        let bits = [
            false, false, true, false, true, true, false, true, true, true,
        ];
        let out = MajorityVote::filter_sequence(3, &bits);
        let transitions = out.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(transitions, 1, "{out:?}");
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn majority_vote_even_panics() {
        MajorityVote::new(2);
    }
}
