//! # bist-dsp
//!
//! Self-contained DSP and numerics substrate for the `adc-bist`
//! reproduction of R. de Vries et al., *Built-In Self-Test Methodology
//! for A/D Converters* (ED&TC 1997).
//!
//! The Rust DSP ecosystem is thin and the reproduction must be fully
//! self-contained, so this crate implements from scratch everything the
//! higher layers need:
//!
//! * [`complex`] / [`fft`] — radix-2 FFT for the dynamic (THD/SINAD) tests.
//! * [`window`] / [`spectrum`] — windowing and single-tone spectral metrics.
//! * [`goertzel`] — cheap single-bin DFT, the "simple digital function"
//!   flavour of on-chip processing the paper advocates.
//! * [`sinefit`] — IEEE-1057 sine fitting (alternative dynamic test).
//! * [`special`] — erf/normal distribution/binomials for the §3 error
//!   theory (Eqs. 6–12).
//! * [`integrate`] — quadrature used to evaluate Eqs. 6–7.
//! * [`stats`] — Welford moments, histograms, correlation (Eq. 10 checks).
//! * [`filter`] — digital filters, including the majority-vote LSB
//!   deglitcher of §3.
//!
//! ## Example
//!
//! ```
//! use bist_dsp::spectrum::{analyze_tone, ToneAnalysisConfig};
//!
//! # fn main() -> Result<(), bist_dsp::fft::FftLengthError> {
//! // An ideal 6-bit quantized sine: ENOB should be close to 6 bits.
//! let n = 4096;
//! let record: Vec<f64> = (0..n)
//!     .map(|i| {
//!         let v = (std::f64::consts::TAU * 1021.0 * i as f64 / n as f64).sin();
//!         (((v + 1.0) / 2.0 * 64.0).floor().clamp(0.0, 63.0) + 0.5) / 32.0 - 1.0
//!     })
//!     .collect();
//! let analysis = analyze_tone(&record, &ToneAnalysisConfig::default())?;
//! assert!((analysis.enob - 6.0).abs() < 0.3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod complex;
pub mod fft;
pub mod filter;
pub mod goertzel;
pub mod integrate;
pub mod sinefit;
pub mod special;
pub mod spectrum;
pub mod stats;
pub mod welch;
pub mod window;

pub use complex::Complex64;
pub use fft::{fft_in_place, fft_real, ifft_in_place, magnitude_spectrum};
pub use goertzel::{harmonic_plan, Goertzel, GoertzelBank, HarmonicPlan, ToneMetrics, TonePowers};
pub use spectrum::{analyze_tone, SpectralAnalysis, ToneAnalysisConfig};
pub use window::Window;
