//! Numerical quadrature used by the measurement-error theory (Eqs. 6–7
//! of the paper integrate the product of a Gaussian code-width density and
//! the trapezoidal acceptance function).
//!
//! Two methods are provided: adaptive Simpson (robust for piecewise-smooth
//! integrands such as `h(ΔV)·f(ΔV)`, which has corner points at the
//! trapezoid knees) and fixed-order Gauss–Legendre (fast for smooth
//! integrands).

/// Result limit guard: adaptive subdivision never goes deeper than this.
const MAX_DEPTH: u32 = 60;

/// Integrates `f` over `[a, b]` with the adaptive Simpson rule.
///
/// `tol` is the absolute error target. The interval may be reversed
/// (`a > b`), in which case the sign follows the usual convention.
///
/// # Examples
///
/// ```
/// let area = bist_dsp::integrate::adaptive_simpson(|x| x * x, 0.0, 3.0, 1e-12);
/// assert!((area - 9.0).abs() < 1e-10);
/// ```
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    if a > b {
        return -adaptive_simpson(f, b, a, tol);
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    simpson_recurse(
        &f,
        a,
        b,
        fa,
        fb,
        fm,
        simpson_estimate(a, b, fa, fm, fb),
        tol,
        MAX_DEPTH,
    )
}

fn simpson_estimate(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn simpson_recurse<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fb: f64,
    fm: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson_estimate(a, m, fa, flm, fm);
    let right = simpson_estimate(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        simpson_recurse(f, a, m, fa, fm, flm, left, tol / 2.0, depth - 1)
            + simpson_recurse(f, m, b, fm, fb, frm, right, tol / 2.0, depth - 1)
    }
}

/// Integrates `f` over `[a, b]` splitting first at the supplied interior
/// `knots` (points where the integrand has corners), then applying
/// adaptive Simpson on each smooth piece.
///
/// Knots outside `(a, b)` are ignored; they need not be sorted.
///
/// This is the right tool for Eq. 6/7: the acceptance trapezoid
/// `h(ΔV, Δs)` has corners at `(i_min−1)Δs`, `i_min·Δs`, `i_max·Δs` and
/// `(i_max+1)Δs`.
pub fn integrate_with_knots<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    b: f64,
    knots: &[f64],
    tol: f64,
) -> f64 {
    if a == b {
        return 0.0;
    }
    if a > b {
        return -integrate_with_knots(f, b, a, knots, tol);
    }
    let mut pts: Vec<f64> = knots.iter().copied().filter(|&k| k > a && k < b).collect();
    pts.sort_by(|x, y| x.partial_cmp(y).expect("knots must not be NaN"));
    pts.dedup();
    let mut total = 0.0;
    let mut lo = a;
    let piece_tol = tol / (pts.len() + 1) as f64;
    for &k in &pts {
        total += adaptive_simpson(&f, lo, k, piece_tol);
        lo = k;
    }
    total + adaptive_simpson(&f, lo, b, piece_tol)
}

/// 20-point Gauss–Legendre nodes (positive half) and weights on [-1, 1].
const GL20_X: [f64; 10] = [
    0.0765265211334973,
    0.2277858511416451,
    0.3737060887154196,
    0.5108670019508271,
    0.636_053_680_726_515,
    0.7463319064601508,
    0.8391169718222188,
    0.912_234_428_251_326,
    0.9639719272779138,
    0.9931285991850949,
];
const GL20_W: [f64; 10] = [
    0.1527533871307258,
    0.1491729864726037,
    0.142_096_109_318_382,
    0.1316886384491766,
    0.1181945319615184,
    0.1019301198172404,
    0.0832767415767048,
    0.0626720483341091,
    0.0406014298003869,
    0.0176140071391521,
];

/// Integrates `f` over `[a, b]` with 20-point Gauss–Legendre quadrature
/// (exact for polynomials up to degree 39).
///
/// # Examples
///
/// ```
/// let v = bist_dsp::integrate::gauss_legendre(|x: f64| x.exp(), 0.0, 1.0);
/// assert!((v - (std::f64::consts::E - 1.0)).abs() < 1e-14);
/// ```
pub fn gauss_legendre<F: Fn(f64) -> f64>(f: F, a: f64, b: f64) -> f64 {
    let c = 0.5 * (a + b);
    let h = 0.5 * (b - a);
    let mut sum = 0.0;
    for i in 0..10 {
        sum += GL20_W[i] * (f(c + h * GL20_X[i]) + f(c - h * GL20_X[i]));
    }
    sum * h
}

/// Composite Gauss–Legendre over `n` panels — for integrands too wiggly
/// for a single 20-point panel.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn gauss_legendre_composite<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(n > 0, "panel count must be non-zero");
    let h = (b - a) / n as f64;
    (0..n)
        .map(|i| {
            let lo = a + i as f64 * h;
            gauss_legendre(&f, lo, lo + h)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::{gaussian_pdf, normal_cdf};

    #[test]
    fn simpson_polynomial_exact() {
        let v = adaptive_simpson(|x| 3.0 * x * x - 2.0 * x + 1.0, -1.0, 2.0, 1e-12);
        // antiderivative x³ - x² + x: (8-4+2) - (-1-1-1) = 9
        assert!((v - 9.0).abs() < 1e-9);
    }

    #[test]
    fn simpson_reversed_interval_flips_sign() {
        let fwd = adaptive_simpson(|x| x.sin(), 0.0, 1.0, 1e-12);
        let rev = adaptive_simpson(|x| x.sin(), 1.0, 0.0, 1e-12);
        assert!((fwd + rev).abs() < 1e-14);
    }

    #[test]
    fn simpson_degenerate_interval() {
        assert_eq!(adaptive_simpson(|x| x, 2.0, 2.0, 1e-12), 0.0);
    }

    #[test]
    fn simpson_gaussian_mass() {
        let v = adaptive_simpson(|x| gaussian_pdf(x, 0.0, 1.0), -8.0, 8.0, 1e-13);
        assert!((v - 1.0).abs() < 1e-10);
    }

    #[test]
    fn gaussian_partial_mass_matches_cdf() {
        let v = adaptive_simpson(|x| gaussian_pdf(x, 1.0, 0.21), 0.5, 1.5, 1e-13);
        let want = normal_cdf(0.5 / 0.21) - normal_cdf(-0.5 / 0.21);
        assert!((v - want).abs() < 1e-10);
    }

    #[test]
    fn knots_handle_corner_integrand() {
        // |x| has a corner at 0; exact integral over [-1, 2] is 2.5.
        let v = integrate_with_knots(|x: f64| x.abs(), -1.0, 2.0, &[0.0], 1e-12);
        assert!((v - 2.5).abs() < 1e-10);
    }

    #[test]
    fn knots_outside_range_are_ignored() {
        let v = integrate_with_knots(|x| x, 0.0, 1.0, &[-5.0, 9.0], 1e-12);
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn knots_unsorted_and_duplicated() {
        let f = |x: f64| if x < 0.5 { 1.0 } else { 2.0 };
        let v = integrate_with_knots(f, 0.0, 1.0, &[0.7, 0.5, 0.5, 0.2], 1e-12);
        assert!((v - 1.5).abs() < 1e-9);
    }

    #[test]
    fn gauss_legendre_exactness_high_degree() {
        // x^19 over [0,1] = 1/20; GL20 must be exact to machine precision.
        let v = gauss_legendre(|x: f64| x.powi(19), 0.0, 1.0);
        assert!((v - 0.05).abs() < 1e-14);
    }

    #[test]
    fn composite_handles_oscillatory() {
        // ∫₀^{10π} sin² = 5π
        let v = gauss_legendre_composite(
            |x: f64| x.sin().powi(2),
            0.0,
            10.0 * std::f64::consts::PI,
            32,
        );
        assert!((v - 5.0 * std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "panel count")]
    fn composite_zero_panels_panics() {
        gauss_legendre_composite(|x| x, 0.0, 1.0, 0);
    }

    #[test]
    fn simpson_agrees_with_gauss() {
        let f = |x: f64| (x * 1.3).cos() * (-0.2 * x).exp();
        let s = adaptive_simpson(f, 0.0, 4.0, 1e-12);
        let g = gauss_legendre_composite(f, 0.0, 4.0, 4);
        assert!((s - g).abs() < 1e-10);
    }
}
