//! Welch's method: averaged periodogram power-spectral-density
//! estimation.
//!
//! §2 of the paper names the two dynamic test parameters as THD and the
//! *introduced noise power*. A single periodogram estimates noise power
//! with 100 % variance; Welch averaging over overlapping windowed
//! segments brings the variance down by the segment count, which is what
//! a production noise-power test needs.

use crate::complex::Complex64;
use crate::fft::{fft_in_place, is_power_of_two, FftLengthError};
use crate::window::Window;
use std::error::Error;
use std::fmt;

/// Error from a Welch PSD estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WelchError {
    /// Segment length is not a power of two.
    BadSegmentLength(usize),
    /// The record is shorter than one segment.
    RecordTooShort {
        /// Samples available.
        have: usize,
        /// Samples needed for one segment.
        need: usize,
    },
}

impl fmt::Display for WelchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WelchError::BadSegmentLength(n) => {
                write!(f, "segment length {n} is not a power of two")
            }
            WelchError::RecordTooShort { have, need } => {
                write!(f, "record has {have} samples, need at least {need}")
            }
        }
    }
}

impl Error for WelchError {}

impl From<FftLengthError> for WelchError {
    fn from(e: FftLengthError) -> Self {
        WelchError::BadSegmentLength(e.len())
    }
}

/// A one-sided power spectral density estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct PsdEstimate {
    /// PSD values per bin (power per bin, window-corrected), bins
    /// `0..=segment/2`.
    psd: Vec<f64>,
    /// Number of averaged segments.
    segments: usize,
    /// Segment length used.
    segment_len: usize,
}

impl PsdEstimate {
    /// The one-sided PSD values (power per bin).
    pub fn values(&self) -> &[f64] {
        &self.psd
    }

    /// Number of segments averaged.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Segment length.
    pub fn segment_len(&self) -> usize {
        self.segment_len
    }

    /// Total power: the sum over all bins (≈ signal variance for a
    /// zero-mean signal).
    pub fn total_power(&self) -> f64 {
        self.psd.iter().sum()
    }

    /// Power in the bin range `[lo, hi]` (inclusive, clamped).
    pub fn band_power(&self, lo: usize, hi: usize) -> f64 {
        let hi = hi.min(self.psd.len() - 1);
        if lo > hi {
            return 0.0;
        }
        self.psd[lo..=hi].iter().sum()
    }
}

/// Estimates the one-sided PSD of `record` by Welch's method with
/// 50 %-overlapped segments of `segment_len` samples and the given
/// window.
///
/// # Errors
///
/// Returns [`WelchError`] if `segment_len` is not a power of two or the
/// record is shorter than one segment.
///
/// # Examples
///
/// ```
/// use bist_dsp::welch::welch_psd;
/// use bist_dsp::window::Window;
///
/// # fn main() -> Result<(), bist_dsp::welch::WelchError> {
/// // White-ish deterministic noise: total PSD power ≈ variance.
/// let noise: Vec<f64> = (0..4096)
///     .map(|i| ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5)
///     .collect();
/// let psd = welch_psd(&noise, 256, Window::Hann)?;
/// let variance = noise.iter().map(|x| x * x).sum::<f64>() / noise.len() as f64;
/// assert!((psd.total_power() - variance).abs() / variance < 0.2);
/// # Ok(())
/// # }
/// ```
pub fn welch_psd(
    record: &[f64],
    segment_len: usize,
    window: Window,
) -> Result<PsdEstimate, WelchError> {
    if !is_power_of_two(segment_len) {
        return Err(WelchError::BadSegmentLength(segment_len));
    }
    if record.len() < segment_len {
        return Err(WelchError::RecordTooShort {
            have: record.len(),
            need: segment_len,
        });
    }
    let hop = segment_len / 2;
    let coeffs = window.coefficients(segment_len);
    let window_power: f64 = coeffs.iter().map(|w| w * w).sum::<f64>() / segment_len as f64;
    let half = segment_len / 2;
    let mut acc = vec![0.0; half + 1];
    let mut segments = 0usize;
    let mut start = 0usize;
    while start + segment_len <= record.len() {
        let mut data: Vec<Complex64> = record[start..start + segment_len]
            .iter()
            .zip(&coeffs)
            .map(|(&x, &w)| Complex64::from_re(x * w))
            .collect();
        fft_in_place(&mut data)?;
        for (k, slot) in acc.iter_mut().enumerate() {
            let p = data[k].norm_sqr() / (segment_len as f64 * segment_len as f64);
            let one_sided = if k == 0 || k == half { p } else { 2.0 * p };
            // Correct for the window's power loss so Parseval holds.
            *slot += one_sided / window_power;
        }
        segments += 1;
        start += hop;
    }
    for slot in &mut acc {
        *slot /= segments as f64;
    }
    Ok(PsdEstimate {
        psd: acc,
        segments,
        segment_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn rejects_bad_segment_length() {
        let x = vec![0.0; 100];
        assert_eq!(
            welch_psd(&x, 100, Window::Hann).unwrap_err(),
            WelchError::BadSegmentLength(100)
        );
    }

    #[test]
    fn rejects_short_record() {
        let x = vec![0.0; 100];
        let err = welch_psd(&x, 256, Window::Hann).unwrap_err();
        assert!(matches!(
            err,
            WelchError::RecordTooShort {
                have: 100,
                need: 256
            }
        ));
    }

    #[test]
    fn white_noise_power_matches_variance() {
        let noise = lcg_noise(16384, 42);
        let variance = noise.iter().map(|x| x * x).sum::<f64>() / noise.len() as f64;
        for window in [Window::Rectangular, Window::Hann, Window::BlackmanHarris] {
            let psd = welch_psd(&noise, 512, window).unwrap();
            let rel = (psd.total_power() - variance).abs() / variance;
            assert!(rel < 0.1, "{window}: rel err {rel}");
        }
    }

    #[test]
    fn white_noise_psd_is_flat() {
        let noise = lcg_noise(65536, 7);
        let psd = welch_psd(&noise, 256, Window::Hann).unwrap();
        let values = &psd.values()[1..psd.values().len() - 1];
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        for (k, &v) in values.iter().enumerate() {
            assert!(
                (v - mean).abs() / mean < 0.5,
                "bin {}: {} vs mean {}",
                k + 1,
                v,
                mean
            );
        }
    }

    #[test]
    fn tone_concentrates_in_band() {
        let n = 8192;
        let seg = 512;
        // Tone at bin 64 of the segment (= cycles 64/512 of fs).
        let tone: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * 64.0 * i as f64 / seg as f64).sin())
            .collect();
        let psd = welch_psd(&tone, seg, Window::Hann).unwrap();
        let band = psd.band_power(62, 66);
        let total = psd.total_power();
        assert!(band / total > 0.99, "band fraction {}", band / total);
        // Sine power = A²/2 = 0.5.
        assert!((total - 0.5).abs() < 0.01, "total {total}");
    }

    #[test]
    fn averaging_reduces_variance() {
        // Estimate the PSD of the same process with few vs many
        // segments; the bin-to-bin scatter must shrink.
        let noise = lcg_noise(65536, 99);
        let scatter = |psd: &PsdEstimate| {
            let v = &psd.values()[1..psd.values().len() - 1];
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x / mean - 1.0).powi(2)).sum::<f64>() / v.len() as f64
        };
        let few = welch_psd(&noise[..2048], 1024, Window::Hann).unwrap();
        let many = welch_psd(&noise, 1024, Window::Hann).unwrap();
        assert!(many.segments() > 10 * few.segments());
        assert!(
            scatter(&many) < scatter(&few) / 4.0,
            "few {} many {}",
            scatter(&few),
            scatter(&many)
        );
    }

    #[test]
    fn segment_count_matches_overlap() {
        let x = vec![0.0; 1024];
        let psd = welch_psd(&x, 256, Window::Hann).unwrap();
        // Starts at 0,128,...,768: (1024-256)/128 + 1 = 7.
        assert_eq!(psd.segments(), 7);
        assert_eq!(psd.segment_len(), 256);
    }

    #[test]
    fn band_power_edges() {
        let noise = lcg_noise(4096, 3);
        let psd = welch_psd(&noise, 256, Window::Hann).unwrap();
        assert_eq!(psd.band_power(10, 5), 0.0);
        assert!((psd.band_power(0, 10_000) - psd.total_power()).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        assert!(WelchError::BadSegmentLength(3).to_string().contains("3"));
    }
}
