#![allow(clippy::needless_range_loop)] // index loops mirror the DFT definition
//! Iterative radix-2 fast Fourier transform.
//!
//! Implements the decimation-in-time Cooley–Tukey algorithm for
//! power-of-two lengths, plus helpers for real-valued inputs. The forward
//! transform computes `X[k] = Σ x[n]·e^{-2πi·kn/N}` (no normalisation);
//! the inverse divides by `N`, so `ifft(fft(x)) == x`.

use crate::complex::Complex64;
use std::error::Error;
use std::fmt;

/// Error returned when an FFT is requested for an unsupported length.
///
/// The radix-2 algorithm requires a power-of-two number of points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftLengthError {
    len: usize,
}

impl FftLengthError {
    /// The offending length.
    #[allow(clippy::len_without_is_empty)] // an error has no emptiness notion
    pub fn len(&self) -> usize {
        self.len
    }
}

impl fmt::Display for FftLengthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fft length {} is not a power of two greater than zero",
            self.len
        )
    }
}

impl Error for FftLengthError {}

/// Returns `true` when `n` is a power of two (and non-zero).
///
/// # Examples
///
/// ```
/// assert!(bist_dsp::fft::is_power_of_two(1024));
/// assert!(!bist_dsp::fft::is_power_of_two(1000));
/// ```
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Permutes `data` into bit-reversed order in place.
fn bit_reverse_permute(data: &mut [Complex64]) {
    let n = data.len();
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            data.swap(i, j);
        }
        let mut m = n >> 1;
        while m >= 1 && j & m != 0 {
            j ^= m;
            m >>= 1;
        }
        j |= m;
    }
}

/// Core butterfly pass; `sign` is −1 for the forward and +1 for the
/// inverse transform.
fn transform_in_place(data: &mut [Complex64], sign: f64) {
    let n = data.len();
    bit_reverse_permute(data);
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex64::cis(ang);
        let half = len / 2;
        let mut start = 0;
        while start < n {
            let mut w = Complex64::ONE;
            for k in 0..half {
                let even = data[start + k];
                let odd = data[start + k + half] * w;
                data[start + k] = even + odd;
                data[start + k + half] = even - odd;
                w *= wlen;
            }
            start += len;
        }
        len <<= 1;
    }
}

/// Computes the forward FFT of `data` in place.
///
/// # Errors
///
/// Returns [`FftLengthError`] if `data.len()` is not a power of two.
///
/// # Examples
///
/// ```
/// use bist_dsp::complex::Complex64;
/// use bist_dsp::fft::fft_in_place;
///
/// # fn main() -> Result<(), bist_dsp::fft::FftLengthError> {
/// let mut x = vec![Complex64::ONE; 4];
/// fft_in_place(&mut x)?;
/// // A constant signal concentrates in bin 0.
/// assert!((x[0].re - 4.0).abs() < 1e-12);
/// assert!(x[1].abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn fft_in_place(data: &mut [Complex64]) -> Result<(), FftLengthError> {
    if !is_power_of_two(data.len()) {
        return Err(FftLengthError { len: data.len() });
    }
    transform_in_place(data, -1.0);
    Ok(())
}

/// Computes the inverse FFT of `data` in place (including the `1/N`
/// normalisation).
///
/// # Errors
///
/// Returns [`FftLengthError`] if `data.len()` is not a power of two.
pub fn ifft_in_place(data: &mut [Complex64]) -> Result<(), FftLengthError> {
    if !is_power_of_two(data.len()) {
        return Err(FftLengthError { len: data.len() });
    }
    transform_in_place(data, 1.0);
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = *z / n;
    }
    Ok(())
}

/// Computes the FFT of a real-valued signal, returning the full complex
/// spectrum.
///
/// # Errors
///
/// Returns [`FftLengthError`] if `signal.len()` is not a power of two.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), bist_dsp::fft::FftLengthError> {
/// let n = 64;
/// let tone: Vec<f64> = (0..n)
///     .map(|i| (std::f64::consts::TAU * 4.0 * i as f64 / n as f64).sin())
///     .collect();
/// let spec = bist_dsp::fft::fft_real(&tone)?;
/// // Energy concentrates in bins 4 and N-4.
/// assert!(spec[4].abs() > 30.0);
/// assert!(spec[5].abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn fft_real(signal: &[f64]) -> Result<Vec<Complex64>, FftLengthError> {
    let mut data: Vec<Complex64> = signal.iter().map(|&x| Complex64::from_re(x)).collect();
    fft_in_place(&mut data)?;
    Ok(data)
}

/// Returns the one-sided magnitude spectrum of a real signal, scaled so a
/// full-scale coherent sine shows its amplitude in its bin.
///
/// Bin 0 (DC) and, for even `N`, the Nyquist bin are not doubled.
///
/// # Errors
///
/// Returns [`FftLengthError`] if `signal.len()` is not a power of two.
pub fn magnitude_spectrum(signal: &[f64]) -> Result<Vec<f64>, FftLengthError> {
    let n = signal.len();
    let spec = fft_real(signal)?;
    let half = n / 2 + 1;
    let mut mags = Vec::with_capacity(half);
    for (k, bin) in spec.iter().take(half).enumerate() {
        let mut m = bin.abs() / n as f64;
        if k != 0 && !(n.is_multiple_of(2) && k == n / 2) {
            m *= 2.0;
        }
        mags.push(m);
    }
    Ok(mags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex64, b: Complex64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut data = vec![Complex64::ZERO; 12];
        let err = fft_in_place(&mut data).unwrap_err();
        assert_eq!(err.len(), 12);
        assert!(err.to_string().contains("12"));
    }

    #[test]
    fn rejects_empty() {
        let mut data: Vec<Complex64> = vec![];
        assert!(fft_in_place(&mut data).is_err());
    }

    #[test]
    fn single_point_is_identity() {
        let mut data = vec![Complex64::new(2.0, -1.0)];
        fft_in_place(&mut data).unwrap();
        assert_eq!(data[0], Complex64::new(2.0, -1.0));
    }

    #[test]
    fn impulse_becomes_flat_spectrum() {
        let mut data = vec![Complex64::ZERO; 8];
        data[0] = Complex64::ONE;
        fft_in_place(&mut data).unwrap();
        for bin in &data {
            assert_close(*bin, Complex64::ONE, 1e-12);
        }
    }

    #[test]
    fn dc_concentrates_in_bin_zero() {
        let mut data = vec![Complex64::from_re(3.0); 16];
        fft_in_place(&mut data).unwrap();
        assert_close(data[0], Complex64::from_re(48.0), 1e-9);
        for bin in &data[1..] {
            assert!(bin.abs() < 1e-9);
        }
    }

    #[test]
    fn matches_naive_dft() {
        let n = 32;
        let signal: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut fast = signal.clone();
        fft_in_place(&mut fast).unwrap();
        for k in 0..n {
            let slow: Complex64 = (0..n)
                .map(|t| {
                    signal[t] * Complex64::cis(-std::f64::consts::TAU * (k * t) as f64 / n as f64)
                })
                .sum();
            assert_close(fast[k], slow, 1e-9);
        }
    }

    #[test]
    fn round_trip_inverse() {
        let n = 128;
        let signal: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let mut data = signal.clone();
        fft_in_place(&mut data).unwrap();
        ifft_in_place(&mut data).unwrap();
        for (a, b) in data.iter().zip(&signal) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let n = 256;
        let signal: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.1).sin(), 0.0))
            .collect();
        let time_energy: f64 = signal.iter().map(|z| z.norm_sqr()).sum();
        let mut data = signal;
        fft_in_place(&mut data).unwrap();
        let freq_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn coherent_tone_lands_in_one_bin() {
        let n = 512;
        let cycles = 17.0;
        let amp = 0.8;
        let tone: Vec<f64> = (0..n)
            .map(|i| amp * (std::f64::consts::TAU * cycles * i as f64 / n as f64).sin())
            .collect();
        let mags = magnitude_spectrum(&tone).unwrap();
        assert!((mags[17] - amp).abs() < 1e-9);
        let leakage: f64 = mags
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != 17)
            .map(|(_, &m)| m)
            .sum();
        assert!(leakage < 1e-6, "leakage {leakage}");
    }

    #[test]
    fn linearity_of_transform() {
        let n = 64;
        let a: Vec<Complex64> = (0..n)
            .map(|i| Complex64::from_re((i as f64).cos()))
            .collect();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::from_re((i as f64).sin()))
            .collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();

        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        fft_in_place(&mut fa).unwrap();
        fft_in_place(&mut fb).unwrap();
        fft_in_place(&mut fs).unwrap();
        for k in 0..n {
            assert_close(fs[k], fa[k] + fb[k], 1e-9);
        }
    }

    #[test]
    fn real_signal_spectrum_is_conjugate_symmetric() {
        let n = 64;
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin() + 0.2).collect();
        let spec = fft_real(&signal).unwrap();
        for k in 1..n / 2 {
            assert_close(spec[k], spec[n - k].conj(), 1e-9);
        }
    }

    #[test]
    fn magnitude_spectrum_dc_not_doubled() {
        let signal = vec![1.0; 16];
        let mags = magnitude_spectrum(&signal).unwrap();
        assert!((mags[0] - 1.0).abs() < 1e-12);
    }
}
