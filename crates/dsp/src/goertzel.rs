//! The Goertzel algorithm: single-bin DFT evaluation, and the streaming
//! Goertzel *bank* behind the dynamic-test subsystem.
//!
//! For on-chip test processing a full FFT is expensive; Goertzel evaluates
//! the spectral power at one frequency with two multipliers and an adder —
//! exactly the kind of "simple digital function" the paper advocates
//! moving on-chip. [`Goertzel`] is the single resonator;
//! [`GoertzelBank`] runs one resonator on the fundamental and each
//! (aliased) harmonic plus Welford total-power moments, so a full
//! SINAD/THD/ENOB/noise-power analysis of a coherent record falls out at
//! end of sweep with **no sample memory** — the streaming counterpart of
//! [`crate::spectrum::analyze_tone`].

use crate::complex::Complex64;
use crate::spectrum::fold_bin;
use std::f64::consts::TAU;

/// Streaming Goertzel evaluator for one DFT bin.
///
/// Feed samples with [`push`](Self::push) and read the complex DFT value
/// with [`dft`](Self::dft) (equivalent to bin `k` of an `n`-point DFT once
/// exactly `n` samples have been pushed).
///
/// # Examples
///
/// ```
/// use bist_dsp::goertzel::Goertzel;
///
/// let n = 128;
/// let k = 5;
/// let mut g = Goertzel::for_bin(k, n);
/// for i in 0..n {
///     g.push((std::f64::consts::TAU * k as f64 * i as f64 / n as f64).cos());
/// }
/// // A unit cosine at bin k has DFT magnitude n/2.
/// assert!((g.dft().abs() - n as f64 / 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Goertzel {
    omega: f64,
    coeff: f64,
    s1: f64,
    s2: f64,
    count: usize,
}

impl Goertzel {
    /// Creates an evaluator for normalised angular frequency
    /// `omega = 2πf/fs` (radians per sample).
    pub fn new(omega: f64) -> Self {
        Goertzel {
            omega,
            coeff: 2.0 * omega.cos(),
            s1: 0.0,
            s2: 0.0,
            count: 0,
        }
    }

    /// Creates an evaluator for bin `k` of an `n`-point DFT.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn for_bin(k: usize, n: usize) -> Self {
        assert!(n > 0, "dft length must be non-zero");
        Goertzel::new(TAU * k as f64 / n as f64)
    }

    /// Processes one sample.
    // bist-lint: hot-path — the resonator recurrence
    #[inline]
    pub fn push(&mut self, x: f64) {
        // Fused multiply-add: one rounding for `coeff·s1 − s2`, which
        // halves the per-step error of the marginally-stable recurrence
        // (the Goertzel-bank-vs-FFT property test leans on this).
        let s0 = x + self.coeff.mul_add(self.s1, -self.s2);
        self.s2 = self.s1;
        self.s1 = s0;
        self.count += 1;
    }

    /// Number of samples processed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The complex DFT value at the configured frequency for the samples
    /// pushed so far.
    pub fn dft(&self) -> Complex64 {
        // X = e^{iω(N-1)}·(s1 - s2·e^{-iω}) — but the common phase factor
        // does not affect magnitude; we return the standard phase-correct
        // form X = s1·e^{-iω(N-1)} ... Using the well-known finalisation:
        let w = Complex64::cis(self.omega);
        let x = Complex64::from_re(self.s1) - Complex64::from_re(self.s2) * w.conj();
        // Phase reference to sample 0:
        x * Complex64::cis(-self.omega * (self.count.saturating_sub(1)) as f64)
    }

    /// Power `|X|²` at the configured frequency.
    pub fn power(&self) -> f64 {
        // Magnitude can be computed without the phase factor; fused
        // multiply-adds keep the cancellation between the three terms
        // as sharp as the representation allows.
        let sq = self.s1.mul_add(self.s1, self.s2 * self.s2);
        (self.coeff * self.s1).mul_add(-self.s2, sq)
    }

    /// Resets the internal state, keeping the frequency.
    pub fn reset(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
        self.count = 0;
    }
}

/// One-sided power scaling for bin `k` of an `n`-point real DFT: interior
/// bins carry the mirrored negative-frequency energy (×2), DC and (for
/// even `n`) Nyquist do not.
pub fn one_sided_factor(k: usize, n: usize) -> f64 {
    if k == 0 || (n.is_multiple_of(2) && k == n / 2) {
        1.0
    } else {
        2.0
    }
}

/// The tone-bin plan shared by every harmonic-bank estimator: which
/// distinct DFT bins need a resonator, and which of them each harmonic
/// order reads.
///
/// Both [`GoertzelBank`] and the fixed-point RTL datapath
/// (`bist_rtl::dyn_top`) build their resonator banks from this one
/// function, so the behavioural and gate-accurate dynamic paths can
/// never disagree about aliasing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarmonicPlan {
    /// Distinct tone bins; index 0 is always the fundamental.
    pub bins: Vec<usize>,
    /// Per harmonic order `h = 2..=harmonics+1`: index into `bins`, or
    /// `None` when that order folds onto DC or the carrier (skipped,
    /// mirroring [`crate::spectrum::analyze_tone`] with a rectangular
    /// window).
    pub slots: Vec<Option<usize>>,
}

/// Plans the distinct tone bins for a fundamental at `fundamental_bin`
/// of an `n`-point record with harmonic orders `2..=harmonics+1`,
/// folding aliases into the first Nyquist zone.
///
/// # Panics
///
/// Panics if `fundamental_bin` is zero or at/above Nyquist (`2·bin >= n`).
pub fn harmonic_plan(fundamental_bin: usize, n: usize, harmonics: usize) -> HarmonicPlan {
    assert!(
        fundamental_bin >= 1 && 2 * fundamental_bin < n,
        "fundamental bin {fundamental_bin} must lie strictly between DC and Nyquist of {n}"
    );
    let mut bins = vec![fundamental_bin];
    let mut slots = Vec::with_capacity(harmonics);
    for h in 2..=(harmonics + 1) {
        let bin = fold_bin(fundamental_bin * h, n);
        if bin == 0 || bin == fundamental_bin {
            slots.push(None);
            continue;
        }
        let slot = match bins.iter().position(|&b| b == bin) {
            Some(i) => i,
            None => {
                bins.push(bin);
                bins.len() - 1
            }
        };
        slots.push(Some(slot));
    }
    HarmonicPlan { bins, slots }
}

/// One-sided power decomposition of a coherent single-tone record, in the
/// squared units of the input samples.
///
/// Produced by [`GoertzelBank::powers`] (streaming) or assembled from any
/// other estimator that can supply the same five numbers (the fixed-point
/// RTL datapath does); [`TonePowers::metrics`] derives the §2 dynamic
/// test parameters from it with the exact arithmetic of
/// [`crate::spectrum::analyze_tone`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TonePowers {
    /// Record length the powers are normalised to.
    pub n: usize,
    /// Carrier-bin power.
    pub carrier: f64,
    /// Harmonic power summed per harmonic *order* (orders folding onto
    /// the same alias bin are counted once each, mirroring
    /// `analyze_tone`); feeds THD and SINAD.
    pub harmonics_by_order: f64,
    /// Harmonic power summed per *distinct* alias bin; this is what the
    /// noise estimate must exclude (each spectral bin exists once).
    pub harmonics_distinct: f64,
    /// DC power (squared mean).
    pub dc: f64,
    /// Total one-sided power = the record's mean square (Parseval).
    pub total: f64,
}

impl TonePowers {
    /// Derives the dynamic-test metrics. Noise is everything that is not
    /// DC, carrier or a harmonic bin; conventions (dB signs, infinities
    /// on empty bands, ENOB from SINAD) match
    /// [`crate::spectrum::analyze_tone`].
    pub fn metrics(&self) -> ToneMetrics {
        let db = |num: f64, den: f64| 10.0 * (num / den).log10();
        let noise = (self.total - self.dc - self.carrier - self.harmonics_distinct).max(0.0);
        let thd_db = if self.harmonics_by_order > 0.0 {
            db(self.harmonics_by_order, self.carrier)
        } else {
            f64::NEG_INFINITY
        };
        let snr_db = if noise > 0.0 {
            db(self.carrier, noise)
        } else {
            f64::INFINITY
        };
        let nad = noise + self.harmonics_by_order;
        let sinad_db = if nad > 0.0 {
            db(self.carrier, nad)
        } else {
            f64::INFINITY
        };
        ToneMetrics {
            carrier_power: self.carrier,
            noise_power: noise,
            thd_db,
            snr_db,
            sinad_db,
            enob: (sinad_db - 1.76) / 6.02,
        }
    }
}

/// Dynamic test metrics derived from a [`TonePowers`] decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToneMetrics {
    /// Carrier power (input units squared).
    pub carrier_power: f64,
    /// Noise power — the §2 "introduced noise power" parameter — in
    /// input units squared (excludes DC, carrier and harmonics).
    pub noise_power: f64,
    /// Total harmonic distortion in dB relative to the carrier.
    pub thd_db: f64,
    /// Signal-to-noise ratio in dB (harmonics excluded).
    pub snr_db: f64,
    /// Signal to noise-and-distortion in dB.
    pub sinad_db: f64,
    /// Effective number of bits, `(SINAD − 1.76)/6.02`.
    pub enob: f64,
}

/// A streaming Goertzel bank for single-tone dynamic analysis: one
/// resonator on the fundamental bin, one per distinct harmonic alias
/// bin, and Welford moments for the total power — SINAD, THD, ENOB and
/// noise power of a coherent record with `2(H+1)` multiplies per sample
/// and no sample memory.
///
/// Harmonics that fold onto DC or the carrier bin are skipped, exactly
/// like [`crate::spectrum::analyze_tone`] with a rectangular window;
/// harmonic orders aliasing to the same bin share one resonator.
///
/// # Examples
///
/// ```
/// use bist_dsp::goertzel::GoertzelBank;
///
/// let n = 1024;
/// let mut bank = GoertzelBank::new(101, n, 5);
/// for i in 0..n {
///     bank.push((std::f64::consts::TAU * 101.0 * i as f64 / n as f64).sin());
/// }
/// let m = bank.powers().metrics();
/// assert!(m.sinad_db > 100.0); // pure tone: essentially no noise
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GoertzelBank {
    n: usize,
    fundamental_bin: usize,
    harmonics: usize,
    /// Distinct tone bins (index 0 = fundamental) and their resonators.
    bins: Vec<usize>,
    resonators: Vec<Goertzel>,
    /// Resonator index per harmonic order `h = 2..=harmonics+1`; `None`
    /// when that order folds onto DC or the carrier.
    harmonic_slots: Vec<Option<usize>>,
    count: usize,
    mean: f64,
    m2: f64,
}

impl GoertzelBank {
    /// Creates a bank for a coherent tone at `fundamental_bin` of an
    /// `n`-point record, tracking harmonic orders `2..=harmonics+1`.
    ///
    /// # Panics
    ///
    /// Panics if `fundamental_bin` is zero or at/above Nyquist
    /// (`2·bin >= n`).
    pub fn new(fundamental_bin: usize, n: usize, harmonics: usize) -> Self {
        let HarmonicPlan { bins, slots } = harmonic_plan(fundamental_bin, n, harmonics);
        let harmonic_slots = slots;
        let resonators = bins.iter().map(|&b| Goertzel::for_bin(b, n)).collect();
        GoertzelBank {
            n,
            fundamental_bin,
            harmonics,
            bins,
            resonators,
            harmonic_slots,
            count: 0,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Processes one sample: clocks every resonator and the Welford
    /// moments. Allocation-free.
    // bist-lint: hot-path — per-sample bank update
    pub fn push(&mut self, x: f64) {
        for g in &mut self.resonators {
            g.push(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples processed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The record length the bank was planned for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The fundamental bin.
    pub fn fundamental_bin(&self) -> usize {
        self.fundamental_bin
    }

    /// The number of harmonic orders tracked.
    pub fn harmonics(&self) -> usize {
        self.harmonics
    }

    /// Clears all state for a new record, keeping the frequency plan (no
    /// reconstruction, no allocation).
    pub fn reset(&mut self) {
        for g in &mut self.resonators {
            g.reset();
        }
        self.count = 0;
        self.mean = 0.0;
        self.m2 = 0.0;
    }

    /// The one-sided power decomposition of the record pushed so far.
    ///
    /// Meaningful once exactly [`Self::n`] samples have been pushed (the
    /// resonator frequencies and normalisation assume the planned
    /// record length — callers gate on their own completeness check).
    /// Every term — including DC and total — is normalised by the
    /// *planned* `n` even on a truncated record, matching the
    /// fixed-point RTL datapath's `Σv / n` register readout so the two
    /// estimators keep the same convention whatever the sample count.
    pub fn powers(&self) -> TonePowers {
        assemble_powers(
            self.n,
            &self.bins,
            &self.harmonic_slots,
            &self.resonators,
            self.count,
            self.mean,
            self.m2,
        )
    }
}

/// Assembles a [`TonePowers`] decomposition from raw bank state: the
/// [`harmonic_plan`] pieces, a contiguous slice of resonators (one per
/// plan bin, in plan order), and Welford total-power moments.
///
/// This is the single normalisation/summation kernel behind
/// [`GoertzelBank::powers`]; lane-parallel engines that keep their
/// resonators in a lane-major array (`bist_core`'s batched dynamic path)
/// call it per lane slice so the batched and scalar decompositions are
/// the same floating-point expression, not merely close.
///
/// # Panics
///
/// Panics if `resonators.len() != bins.len()`.
pub fn assemble_powers(
    n: usize,
    bins: &[usize],
    harmonic_slots: &[Option<usize>],
    resonators: &[Goertzel],
    count: usize,
    mean: f64,
    m2: f64,
) -> TonePowers {
    assert_eq!(
        resonators.len(),
        bins.len(),
        "one resonator per planned bin"
    );
    let n2 = (n * n) as f64;
    let bin_power = |slot: usize| one_sided_factor(bins[slot], n) * resonators[slot].power() / n2;
    let carrier = bin_power(0);
    let mut by_order = 0.0;
    for slot in harmonic_slots.iter().flatten() {
        by_order += bin_power(*slot);
    }
    let mut distinct = 0.0;
    for slot in 1..bins.len() {
        distinct += bin_power(slot);
    }
    // Reconstruct Σx and Σx² from the Welford moments (exact
    // identities), then normalise by the planned length.
    let count = count as f64;
    let n_f = n as f64;
    let sum = mean * count;
    let sum_sq = m2 + count * mean * mean;
    let dc = (sum / n_f) * (sum / n_f);
    let total = sum_sq / n_f;
    TonePowers {
        n,
        carrier,
        harmonics_by_order: by_order,
        harmonics_distinct: distinct,
        dc,
        total,
    }
}

/// Convenience: evaluates DFT bin `k` of `signal` (length `n = signal.len()`).
///
/// # Panics
///
/// Panics if `signal` is empty.
pub fn goertzel_bin(signal: &[f64], k: usize) -> Complex64 {
    let mut g = Goertzel::for_bin(k, signal.len());
    for &x in signal {
        g.push(x);
    }
    g.dft()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft_real;

    #[test]
    fn matches_fft_bins() {
        let n = 256;
        let signal: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.21).sin() + 0.5 * (i as f64 * 0.77).cos())
            .collect();
        let spec = fft_real(&signal).unwrap();
        for k in [0, 1, 7, 63, 128] {
            let g = goertzel_bin(&signal, k);
            assert!(
                (g - spec[k]).abs() < 1e-6 * (1.0 + spec[k].abs()),
                "bin {k}: goertzel {g} vs fft {}",
                spec[k]
            );
        }
    }

    #[test]
    fn power_matches_dft_magnitude() {
        let n = 128;
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin()).collect();
        for k in [3, 10, 40] {
            let mut g = Goertzel::for_bin(k, n);
            for &x in &signal {
                g.push(x);
            }
            assert!(
                (g.power() - g.dft().norm_sqr()).abs() < 1e-6 * (1.0 + g.power()),
                "bin {k}"
            );
        }
    }

    #[test]
    fn dc_bin_sums_signal() {
        let signal = [1.0, 2.0, 3.0, 4.0];
        let g = goertzel_bin(&signal, 0);
        assert!((g.re - 10.0).abs() < 1e-12);
        assert!(g.im.abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut g = Goertzel::for_bin(1, 8);
        g.push(1.0);
        g.push(-1.0);
        g.reset();
        assert_eq!(g.count(), 0);
        assert_eq!(g.power(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length must be non-zero")]
    fn zero_length_panics() {
        Goertzel::for_bin(0, 0);
    }

    #[test]
    fn bank_matches_analyze_tone_on_quantized_sine() {
        use crate::spectrum::{analyze_tone, ToneAnalysisConfig};
        let n = 4096;
        let bits = 6u32;
        let levels = (1u32 << bits) as f64;
        let k = 1021usize;
        let record: Vec<f64> = (0..n)
            .map(|i| {
                let v = (TAU * k as f64 * i as f64 / n as f64).sin() * 1.01;
                let code = ((v + 1.0) / 2.0 * levels).floor().clamp(0.0, levels - 1.0);
                (code + 0.5) / levels - 0.5
            })
            .collect();
        let mut bank = GoertzelBank::new(k, n, 5);
        for &x in &record {
            bank.push(x);
        }
        let m = bank.powers().metrics();
        let cfg = ToneAnalysisConfig {
            fundamental_bin: Some(k),
            ..Default::default()
        };
        let a = analyze_tone(&record, &cfg).unwrap();
        assert!(
            (m.sinad_db - a.sinad_db).abs() < 1e-9,
            "sinad {} vs {}",
            m.sinad_db,
            a.sinad_db
        );
        assert!(
            (m.thd_db - a.thd_db).abs() < 1e-9,
            "thd {} vs {}",
            m.thd_db,
            a.thd_db
        );
        assert!((m.snr_db - a.snr_db).abs() < 1e-9);
        assert!((m.enob - a.enob).abs() < 1e-10);
    }

    #[test]
    fn bank_skips_harmonics_folding_onto_carrier_and_dc() {
        // n = 64, fundamental 16: H2 → 32 (Nyquist), H3 → 48 folds to 16
        // (the carrier — skipped), H4 → 64 folds to 0 (DC — skipped).
        let bank = GoertzelBank::new(16, 64, 3);
        assert_eq!(bank.harmonic_slots.len(), 3);
        assert!(bank.harmonic_slots[0].is_some()); // H2 at Nyquist bin 32
        assert_eq!(bank.harmonic_slots[1], None); // H3 aliases the carrier
        assert_eq!(bank.harmonic_slots[2], None); // H4 aliases DC
        assert_eq!(bank.bins, vec![16, 32]);
    }

    #[test]
    fn bank_shares_resonator_for_duplicate_alias_bins() {
        // n = 60, fundamental 12: H2 → 24, H3 → 36 folds to 24 — the two
        // orders share one resonator but are counted twice for THD.
        let mut bank = GoertzelBank::new(12, 60, 2);
        assert_eq!(bank.bins, vec![12, 24]);
        assert_eq!(bank.harmonic_slots, vec![Some(1), Some(1)]);
        for i in 0..60 {
            bank.push(
                (TAU * 12.0 * i as f64 / 60.0).sin() + 0.1 * (TAU * 24.0 * i as f64 / 60.0).sin(),
            );
        }
        let p = bank.powers();
        assert!((p.harmonics_by_order - 2.0 * p.harmonics_distinct).abs() < 1e-15);
    }

    #[test]
    fn bank_total_power_matches_parseval() {
        let n = 256;
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.25).collect();
        let mut bank = GoertzelBank::new(15, n, 4);
        for &x in &signal {
            bank.push(x);
        }
        let p = bank.powers();
        let mean_square = signal.iter().map(|x| x * x).sum::<f64>() / n as f64;
        assert!((p.total - mean_square).abs() < 1e-12);
        let mean = signal.iter().sum::<f64>() / n as f64;
        assert!((p.dc - mean * mean).abs() < 1e-12);
    }

    #[test]
    fn bank_reset_reproduces_fresh_run() {
        let n = 128;
        let mut bank = GoertzelBank::new(9, n, 5);
        for i in 0..n {
            bank.push((i as f64 * 0.3).sin());
        }
        bank.reset();
        assert_eq!(bank.count(), 0);
        for i in 0..n {
            bank.push((TAU * 9.0 * i as f64 / n as f64).cos());
        }
        let mut fresh = GoertzelBank::new(9, n, 5);
        for i in 0..n {
            fresh.push((TAU * 9.0 * i as f64 / n as f64).cos());
        }
        assert_eq!(bank.powers(), fresh.powers());
    }

    #[test]
    fn pure_tone_metrics_degenerate_bands() {
        // A noiseless on-bin tone: no harmonics, no noise — the dB
        // conventions must mirror analyze_tone's infinities.
        let n = 512;
        let mut bank = GoertzelBank::new(5, n, 0);
        for i in 0..n {
            bank.push((TAU * 5.0 * i as f64 / n as f64).sin());
        }
        let m = bank.powers().metrics();
        assert_eq!(m.thd_db, f64::NEG_INFINITY);
        assert!(m.sinad_db > 100.0);
    }

    #[test]
    #[should_panic(expected = "strictly between DC and Nyquist")]
    fn bank_rejects_dc_fundamental() {
        GoertzelBank::new(0, 64, 3);
    }

    #[test]
    #[should_panic(expected = "strictly between DC and Nyquist")]
    fn bank_rejects_nyquist_fundamental() {
        GoertzelBank::new(32, 64, 3);
    }

    #[test]
    fn tone_detection_selectivity() {
        // A bin-17 tone must show far more power in bin 17 than bin 18.
        let n = 512;
        let tone: Vec<f64> = (0..n)
            .map(|i| (TAU * 17.0 * i as f64 / n as f64).sin())
            .collect();
        let p17 = goertzel_bin(&tone, 17).norm_sqr();
        let p18 = goertzel_bin(&tone, 18).norm_sqr();
        assert!(p17 > 1e9 * p18.max(1e-30), "p17={p17} p18={p18}");
    }
}
