//! The Goertzel algorithm: single-bin DFT evaluation.
//!
//! For on-chip test processing a full FFT is expensive; Goertzel evaluates
//! the spectral power at one frequency with two multipliers and an adder —
//! exactly the kind of "simple digital function" the paper advocates
//! moving on-chip. Used by the dynamic-test example to estimate carrier
//! and harmonic powers cheaply.

use crate::complex::Complex64;
use std::f64::consts::TAU;

/// Streaming Goertzel evaluator for one DFT bin.
///
/// Feed samples with [`push`](Self::push) and read the complex DFT value
/// with [`dft`](Self::dft) (equivalent to bin `k` of an `n`-point DFT once
/// exactly `n` samples have been pushed).
///
/// # Examples
///
/// ```
/// use bist_dsp::goertzel::Goertzel;
///
/// let n = 128;
/// let k = 5;
/// let mut g = Goertzel::for_bin(k, n);
/// for i in 0..n {
///     g.push((std::f64::consts::TAU * k as f64 * i as f64 / n as f64).cos());
/// }
/// // A unit cosine at bin k has DFT magnitude n/2.
/// assert!((g.dft().abs() - n as f64 / 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Goertzel {
    omega: f64,
    coeff: f64,
    s1: f64,
    s2: f64,
    count: usize,
}

impl Goertzel {
    /// Creates an evaluator for normalised angular frequency
    /// `omega = 2πf/fs` (radians per sample).
    pub fn new(omega: f64) -> Self {
        Goertzel {
            omega,
            coeff: 2.0 * omega.cos(),
            s1: 0.0,
            s2: 0.0,
            count: 0,
        }
    }

    /// Creates an evaluator for bin `k` of an `n`-point DFT.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn for_bin(k: usize, n: usize) -> Self {
        assert!(n > 0, "dft length must be non-zero");
        Goertzel::new(TAU * k as f64 / n as f64)
    }

    /// Processes one sample.
    pub fn push(&mut self, x: f64) {
        let s0 = x + self.coeff * self.s1 - self.s2;
        self.s2 = self.s1;
        self.s1 = s0;
        self.count += 1;
    }

    /// Number of samples processed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The complex DFT value at the configured frequency for the samples
    /// pushed so far.
    pub fn dft(&self) -> Complex64 {
        // X = e^{iω(N-1)}·(s1 - s2·e^{-iω}) — but the common phase factor
        // does not affect magnitude; we return the standard phase-correct
        // form X = s1·e^{-iω(N-1)} ... Using the well-known finalisation:
        let w = Complex64::cis(self.omega);
        let x = Complex64::from_re(self.s1) - Complex64::from_re(self.s2) * w.conj();
        // Phase reference to sample 0:
        x * Complex64::cis(-self.omega * (self.count.saturating_sub(1)) as f64)
    }

    /// Power `|X|²` at the configured frequency.
    pub fn power(&self) -> f64 {
        // Magnitude can be computed without the phase factor:
        self.s1 * self.s1 + self.s2 * self.s2 - self.coeff * self.s1 * self.s2
    }

    /// Resets the internal state, keeping the frequency.
    pub fn reset(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
        self.count = 0;
    }
}

/// Convenience: evaluates DFT bin `k` of `signal` (length `n = signal.len()`).
///
/// # Panics
///
/// Panics if `signal` is empty.
pub fn goertzel_bin(signal: &[f64], k: usize) -> Complex64 {
    let mut g = Goertzel::for_bin(k, signal.len());
    for &x in signal {
        g.push(x);
    }
    g.dft()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft_real;

    #[test]
    fn matches_fft_bins() {
        let n = 256;
        let signal: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.21).sin() + 0.5 * (i as f64 * 0.77).cos())
            .collect();
        let spec = fft_real(&signal).unwrap();
        for k in [0, 1, 7, 63, 128] {
            let g = goertzel_bin(&signal, k);
            assert!(
                (g - spec[k]).abs() < 1e-6 * (1.0 + spec[k].abs()),
                "bin {k}: goertzel {g} vs fft {}",
                spec[k]
            );
        }
    }

    #[test]
    fn power_matches_dft_magnitude() {
        let n = 128;
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin()).collect();
        for k in [3, 10, 40] {
            let mut g = Goertzel::for_bin(k, n);
            for &x in &signal {
                g.push(x);
            }
            assert!(
                (g.power() - g.dft().norm_sqr()).abs() < 1e-6 * (1.0 + g.power()),
                "bin {k}"
            );
        }
    }

    #[test]
    fn dc_bin_sums_signal() {
        let signal = [1.0, 2.0, 3.0, 4.0];
        let g = goertzel_bin(&signal, 0);
        assert!((g.re - 10.0).abs() < 1e-12);
        assert!(g.im.abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut g = Goertzel::for_bin(1, 8);
        g.push(1.0);
        g.push(-1.0);
        g.reset();
        assert_eq!(g.count(), 0);
        assert_eq!(g.power(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length must be non-zero")]
    fn zero_length_panics() {
        Goertzel::for_bin(0, 0);
    }

    #[test]
    fn tone_detection_selectivity() {
        // A bin-17 tone must show far more power in bin 17 than bin 18.
        let n = 512;
        let tone: Vec<f64> = (0..n)
            .map(|i| (TAU * 17.0 * i as f64 / n as f64).sin())
            .collect();
        let p17 = goertzel_bin(&tone, 17).norm_sqr();
        let p18 = goertzel_bin(&tone, 18).norm_sqr();
        assert!(p17 > 1e9 * p18.max(1e-30), "p17={p17} p18={p18}");
    }
}
