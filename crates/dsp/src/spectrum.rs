#![allow(clippy::needless_range_loop)] // index loops mirror the maths/netlists
//! Spectral metrics for dynamic ADC testing: THD, SNR, SINAD, ENOB and
//! SFDR.
//!
//! The paper's §2 notes that the BIST capture path supports "dynamic"
//! tests where Total Harmonic Distortion and noise power are the main
//! parameters (citing Mahoney's DSP-based testing). This module provides
//! the off-chip/on-chip processing for those tests on a captured code
//! record.

use crate::complex::Complex64;
use crate::fft::{fft_in_place, FftLengthError};
use crate::window::Window;
use std::fmt;

/// Result of a single-tone spectral analysis.
///
/// All decibel quantities are relative to the carrier unless stated
/// otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralAnalysis {
    /// Bin index of the fundamental.
    pub fundamental_bin: usize,
    /// Estimated amplitude of the fundamental (same units as input).
    pub fundamental_amplitude: f64,
    /// Total harmonic distortion in dB (negative; power of harmonics 2..=H
    /// relative to the carrier).
    pub thd_db: f64,
    /// Signal-to-noise ratio in dB (excludes harmonics and DC).
    pub snr_db: f64,
    /// Signal to noise-and-distortion in dB.
    pub sinad_db: f64,
    /// Effective number of bits derived from SINAD.
    pub enob: f64,
    /// Spurious-free dynamic range in dB (carrier to worst spur).
    pub sfdr_db: f64,
}

impl fmt::Display for SpectralAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fund bin {} amp {:.4}: THD {:.1} dB, SNR {:.1} dB, SINAD {:.1} dB, ENOB {:.2} b, SFDR {:.1} dB",
            self.fundamental_bin,
            self.fundamental_amplitude,
            self.thd_db,
            self.snr_db,
            self.sinad_db,
            self.enob,
            self.sfdr_db
        )
    }
}

/// Configuration for [`analyze_tone`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToneAnalysisConfig {
    /// Window applied before the FFT.
    pub window: Window,
    /// Number of harmonics (2nd..=`harmonics`+1th) counted as distortion.
    pub harmonics: usize,
    /// Optional known fundamental bin; when `None` the largest non-DC bin
    /// is used.
    pub fundamental_bin: Option<usize>,
}

impl Default for ToneAnalysisConfig {
    fn default() -> Self {
        ToneAnalysisConfig {
            window: Window::Rectangular,
            harmonics: 5,
            fundamental_bin: None,
        }
    }
}

/// Folds a harmonic frequency into the first Nyquist zone of an `n`-point
/// one-sided spectrum.
///
/// Harmonics above Nyquist alias back; this mirrors standard ADC test
/// practice.
///
/// # Examples
///
/// ```
/// // In a 64-point record, the 5th harmonic of bin 20 (bin 100) aliases.
/// assert_eq!(bist_dsp::spectrum::fold_bin(100, 64), 28);
/// ```
pub fn fold_bin(bin: usize, n: usize) -> usize {
    let m = bin % n;
    if m <= n / 2 {
        m
    } else {
        n - m
    }
}

/// Analyzes a captured single-tone record.
///
/// The record is windowed, transformed, and the carrier, harmonic and
/// noise powers are separated. Window leakage around the carrier and each
/// harmonic is attributed to that tone (per [`Window::leakage_bins`]).
///
/// # Errors
///
/// Returns [`FftLengthError`] if `record.len()` is not a power of two.
///
/// # Panics
///
/// Panics if the record is all zeros (no fundamental can be located).
///
/// # Examples
///
/// ```
/// use bist_dsp::spectrum::{analyze_tone, ToneAnalysisConfig};
///
/// # fn main() -> Result<(), bist_dsp::fft::FftLengthError> {
/// let n = 1024;
/// let x: Vec<f64> = (0..n)
///     .map(|i| (std::f64::consts::TAU * 101.0 * i as f64 / n as f64).sin())
///     .collect();
/// let a = analyze_tone(&x, &ToneAnalysisConfig::default())?;
/// assert_eq!(a.fundamental_bin, 101);
/// assert!(a.sinad_db > 100.0); // pure tone: essentially no noise
/// # Ok(())
/// # }
/// ```
pub fn analyze_tone(
    record: &[f64],
    config: &ToneAnalysisConfig,
) -> Result<SpectralAnalysis, FftLengthError> {
    let n = record.len();
    let mut data: Vec<Complex64> = record
        .iter()
        .enumerate()
        .map(|(i, &x)| Complex64::from_re(x * config.window.value(i, n)))
        .collect();
    fft_in_place(&mut data)?;

    let half = n / 2;
    // One-sided power spectrum (bin 0..=half).
    let power: Vec<f64> = data[..=half]
        .iter()
        .enumerate()
        .map(|(k, z)| {
            let p = z.norm_sqr() / (n as f64 * n as f64);
            if k == 0 || (n.is_multiple_of(2) && k == half) {
                p
            } else {
                2.0 * p
            }
        })
        .collect();

    let guard = config.window.leakage_bins();
    let fundamental_bin = config.fundamental_bin.unwrap_or_else(|| {
        power[1..]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("power is finite"))
            .map(|(i, _)| i + 1)
            .expect("record must be non-empty")
    });
    assert!(
        power[fundamental_bin] > 0.0,
        "record has no energy at the fundamental"
    );

    let band_power = |center: usize| -> f64 {
        let lo = center.saturating_sub(guard);
        let hi = (center + guard).min(half);
        power[lo..=hi].iter().sum()
    };

    let carrier_power = band_power(fundamental_bin);
    let coherent_gain = config.window.coherent_gain();
    // Amplitude from the peak-bin magnitude: for coherent capture this is
    // exact; for non-coherent capture the error is the window's
    // scalloping loss (negligible for FlatTop, up to ~3.9 dB for
    // Rectangular — pick the window to match the capture).
    let fundamental_amplitude = 2.0 * data[fundamental_bin].abs() / (n as f64 * coherent_gain);

    let mut harmonic_bins = Vec::with_capacity(config.harmonics);
    let mut harmonic_power = 0.0;
    for h in 2..=(config.harmonics + 1) {
        let bin = fold_bin(fundamental_bin * h, n);
        if bin == 0 || bin.abs_diff(fundamental_bin) <= guard {
            continue; // folded onto DC or the carrier: skip
        }
        harmonic_bins.push(bin);
        harmonic_power += band_power(bin);
    }

    // Noise: everything except DC(+guard), carrier band, harmonic bands.
    let mut excluded = vec![false; half + 1];
    for k in 0..=guard.min(half) {
        excluded[k] = true;
    }
    let mut mark = |center: usize| {
        let lo = center.saturating_sub(guard);
        let hi = (center + guard).min(half);
        for e in excluded.iter_mut().take(hi + 1).skip(lo) {
            *e = true;
        }
    };
    mark(fundamental_bin);
    for &b in &harmonic_bins {
        mark(b);
    }
    let mut noise_power = 0.0;
    let mut worst_spur = 0.0f64;
    for k in 1..=half {
        if !excluded[k] {
            noise_power += power[k];
            if power[k] > worst_spur {
                worst_spur = power[k];
            }
        }
    }
    for &b in &harmonic_bins {
        let p = band_power(b);
        if p > worst_spur {
            worst_spur = p;
        }
    }

    let db = |num: f64, den: f64| 10.0 * (num / den).log10();
    let thd_db = if harmonic_power > 0.0 {
        db(harmonic_power, carrier_power)
    } else {
        f64::NEG_INFINITY
    };
    let snr_db = if noise_power > 0.0 {
        db(carrier_power, noise_power)
    } else {
        f64::INFINITY
    };
    let nad = noise_power + harmonic_power;
    let sinad_db = if nad > 0.0 {
        db(carrier_power, nad)
    } else {
        f64::INFINITY
    };
    let enob = (sinad_db - 1.76) / 6.02;
    let sfdr_db = if worst_spur > 0.0 {
        db(carrier_power, worst_spur)
    } else {
        f64::INFINITY
    };

    Ok(SpectralAnalysis {
        fundamental_bin,
        fundamental_amplitude,
        thd_db,
        snr_db,
        sinad_db,
        enob,
        sfdr_db,
    })
}

/// The ideal SINAD (= SNR) of an `n`-bit quantizer driven by a full-scale
/// sine: `6.02·n + 1.76` dB.
///
/// # Examples
///
/// ```
/// assert!((bist_dsp::spectrum::ideal_sinad_db(6) - 37.88).abs() < 1e-9);
/// ```
pub fn ideal_sinad_db(bits: u32) -> f64 {
    6.02 * bits as f64 + 1.76
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn tone(n: usize, cycles: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (TAU * cycles * i as f64 / n as f64).sin())
            .collect()
    }

    #[test]
    fn fold_bin_reflects_at_nyquist() {
        assert_eq!(fold_bin(10, 64), 10);
        assert_eq!(fold_bin(32, 64), 32);
        assert_eq!(fold_bin(40, 64), 24);
        assert_eq!(fold_bin(64, 64), 0);
        assert_eq!(fold_bin(70, 64), 6);
    }

    #[test]
    fn pure_tone_has_huge_sinad() {
        let x = tone(1024, 31.0, 1.0);
        let a = analyze_tone(&x, &ToneAnalysisConfig::default()).unwrap();
        assert_eq!(a.fundamental_bin, 31);
        assert!((a.fundamental_amplitude - 1.0).abs() < 1e-9);
        assert!(a.sinad_db > 120.0);
        assert!(a.thd_db < -120.0);
    }

    #[test]
    fn detects_second_harmonic_distortion() {
        let n = 1024;
        let mut x = tone(n, 17.0, 1.0);
        let h2 = tone(n, 34.0, 0.01); // −40 dB second harmonic
        for (a, b) in x.iter_mut().zip(&h2) {
            *a += *b;
        }
        let a = analyze_tone(&x, &ToneAnalysisConfig::default()).unwrap();
        assert!((a.thd_db + 40.0).abs() < 0.5, "thd {}", a.thd_db);
        assert!((a.sfdr_db - 40.0).abs() < 0.5, "sfdr {}", a.sfdr_db);
    }

    #[test]
    fn harmonics_above_nyquist_are_folded() {
        let n = 256;
        // Fundamental at 100; 2nd harmonic at 200 folds to 56.
        let mut x = tone(n, 100.0, 1.0);
        let h2 = tone(n, 200.0, 0.05);
        for (a, b) in x.iter_mut().zip(&h2) {
            *a += *b;
        }
        let a = analyze_tone(&x, &ToneAnalysisConfig::default()).unwrap();
        assert!((a.thd_db + 26.0).abs() < 0.7, "thd {}", a.thd_db);
    }

    #[test]
    fn quantization_noise_matches_theory() {
        // Quantize a full-scale tone to 8 bits: SINAD should be close to
        // 6.02*8+1.76 = 49.9 dB.
        let n = 4096;
        let bits = 8;
        let levels = (1u32 << bits) as f64;
        let x: Vec<f64> = tone(n, 1021.0, 1.0)
            .into_iter()
            .map(|v| {
                let code = (((v + 1.0) / 2.0 * levels).floor()).clamp(0.0, levels - 1.0);
                (code + 0.5) / levels * 2.0 - 1.0
            })
            .collect();
        let a = analyze_tone(&x, &ToneAnalysisConfig::default()).unwrap();
        let ideal = ideal_sinad_db(bits);
        assert!(
            (a.sinad_db - ideal).abs() < 1.5,
            "sinad {} vs ideal {}",
            a.sinad_db,
            ideal
        );
        assert!((a.enob - bits as f64).abs() < 0.3, "enob {}", a.enob);
    }

    #[test]
    fn windowed_non_coherent_tone_amplitude_recovered() {
        let n = 1024;
        // Non-integer number of cycles: leakage without a window.
        let x: Vec<f64> = (0..n)
            .map(|i| 0.7 * (TAU * 33.37 * i as f64 / n as f64).sin())
            .collect();
        let cfg = ToneAnalysisConfig {
            window: Window::FlatTop,
            ..Default::default()
        };
        let a = analyze_tone(&x, &cfg).unwrap();
        assert!(
            (a.fundamental_amplitude - 0.7).abs() < 0.01,
            "amp {}",
            a.fundamental_amplitude
        );
    }

    #[test]
    fn explicit_fundamental_bin_is_honoured() {
        let n = 512;
        let mut x = tone(n, 10.0, 0.3);
        let big = tone(n, 40.0, 1.0);
        for (a, b) in x.iter_mut().zip(&big) {
            *a += *b;
        }
        let cfg = ToneAnalysisConfig {
            fundamental_bin: Some(10),
            ..Default::default()
        };
        let a = analyze_tone(&x, &cfg).unwrap();
        assert_eq!(a.fundamental_bin, 10);
        // The 40-cycle tone is treated as a (4th-harmonic) spur.
        assert!(a.sfdr_db < 0.0);
    }

    #[test]
    fn non_power_of_two_is_error() {
        assert!(analyze_tone(&[0.0; 100], &ToneAnalysisConfig::default()).is_err());
    }

    #[test]
    fn display_contains_metrics() {
        let x = tone(256, 7.0, 1.0);
        let a = analyze_tone(&x, &ToneAnalysisConfig::default()).unwrap();
        let s = a.to_string();
        assert!(s.contains("SINAD") && s.contains("ENOB"));
    }
}
