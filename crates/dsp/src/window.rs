//! Window functions for spectral analysis of non-coherently sampled
//! signals.
//!
//! Dynamic ADC tests (THD, SINAD — see §2 of the paper and Mahoney's
//! DSP-based testing book it references) require windowing whenever the
//! stimulus is not exactly coherent with the sample clock. Each window
//! exposes its *coherent gain* (DC gain) and *equivalent noise bandwidth*
//! (ENBW) so spectral power estimates can be corrected.

use std::f64::consts::TAU;
use std::fmt;

/// Supported window shapes.
///
/// # Examples
///
/// ```
/// use bist_dsp::window::Window;
///
/// let w = Window::Hann.coefficients(8);
/// assert_eq!(w.len(), 8);
/// assert!(w[0] < 1e-12); // Hann is zero at the edges
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Window {
    /// No weighting (all ones). Best for coherent sampling.
    #[default]
    Rectangular,
    /// Hann (raised cosine); −31.5 dB first sidelobe.
    Hann,
    /// Hamming; −42.7 dB first sidelobe, non-zero edges.
    Hamming,
    /// Blackman (3-term); −58 dB first sidelobe.
    Blackman,
    /// Blackman–Harris 4-term; −92 dB sidelobes, the usual choice for
    /// ADC spectral testing.
    BlackmanHarris,
    /// Flat-top (5-term); very low scalloping loss, used for accurate
    /// amplitude measurement.
    FlatTop,
}

impl Window {
    /// All window variants, for sweeps and tests.
    pub const ALL: [Window; 6] = [
        Window::Rectangular,
        Window::Hann,
        Window::Hamming,
        Window::Blackman,
        Window::BlackmanHarris,
        Window::FlatTop,
    ];

    /// Cosine-series coefficients `a₀ − a₁cos + a₂cos − …` for this
    /// window.
    fn terms(self) -> &'static [f64] {
        match self {
            Window::Rectangular => &[1.0],
            Window::Hann => &[0.5, 0.5],
            Window::Hamming => &[0.54, 0.46],
            Window::Blackman => &[0.42, 0.5, 0.08],
            Window::BlackmanHarris => &[0.35875, 0.48829, 0.14128, 0.01168],
            Window::FlatTop => &[
                0.21557895,
                0.41663158,
                0.277263158,
                0.083578947,
                0.006947368,
            ],
        }
    }

    /// Evaluates the window at sample `i` of `n` (periodic form, suitable
    /// for FFT analysis).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `i >= n`.
    pub fn value(self, i: usize, n: usize) -> f64 {
        assert!(n > 0, "window length must be non-zero");
        assert!(i < n, "sample index {i} out of range for window length {n}");
        let x = TAU * i as f64 / n as f64;
        self.terms()
            .iter()
            .enumerate()
            .map(|(k, &a)| {
                if k % 2 == 0 {
                    a * (k as f64 * x).cos()
                } else {
                    -a * (k as f64 * x).cos()
                }
            })
            .sum()
    }

    /// Generates the `n`-point window.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.value(i, n)).collect()
    }

    /// Multiplies `signal` by the window in place.
    ///
    /// # Examples
    ///
    /// ```
    /// use bist_dsp::window::Window;
    /// let mut signal = vec![1.0; 16];
    /// Window::Hann.apply(&mut signal);
    /// assert!(signal[0] < 1e-12);
    /// assert!((signal[8] - 1.0).abs() < 1e-12);
    /// ```
    pub fn apply(self, signal: &mut [f64]) {
        let n = signal.len();
        if n == 0 {
            return;
        }
        for (i, s) in signal.iter_mut().enumerate() {
            *s *= self.value(i, n);
        }
    }

    /// The coherent gain: mean of the window coefficients. Amplitude
    /// estimates must be divided by this.
    pub fn coherent_gain(self) -> f64 {
        // For the cosine-series form the mean over a period is a₀.
        self.terms()[0]
    }

    /// Equivalent noise bandwidth in bins: `N·Σw² / (Σw)²` in the limit,
    /// computed from the series coefficients.
    pub fn enbw(self) -> f64 {
        let t = self.terms();
        let sum_sq: f64 = t[0] * t[0] + t[1..].iter().map(|&a| a * a / 2.0).sum::<f64>();
        sum_sq / (t[0] * t[0])
    }

    /// Number of bins on each side of a tone that carry significant
    /// window leakage; used when excluding a carrier from noise power.
    pub fn leakage_bins(self) -> usize {
        match self {
            Window::Rectangular => 0,
            Window::Hann | Window::Hamming => 1,
            Window::Blackman => 2,
            Window::BlackmanHarris => 3,
            Window::FlatTop => 4,
        }
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Window::Rectangular => "rectangular",
            Window::Hann => "hann",
            Window::Hamming => "hamming",
            Window::Blackman => "blackman",
            Window::BlackmanHarris => "blackman-harris",
            Window::FlatTop => "flat-top",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(16)
            .iter()
            .all(|&w| (w - 1.0).abs() < 1e-15));
    }

    #[test]
    fn hann_zero_at_edges_unity_at_centre() {
        let w = Window::Hann.coefficients(64);
        assert!(w[0].abs() < 1e-12);
        assert!((w[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windows_are_bounded() {
        for win in Window::ALL {
            for &w in &win.coefficients(128) {
                assert!(
                    (-0.1..=1.100001).contains(&w),
                    "{win} coefficient {w} out of expected range"
                );
            }
        }
    }

    #[test]
    fn windows_are_symmetric_periodically() {
        // Periodic windows satisfy w[i] == w[n-i] for i >= 1.
        for win in Window::ALL {
            let w = win.coefficients(64);
            for i in 1..64 {
                assert!((w[i] - w[64 - i]).abs() < 1e-12, "{win} asymmetric at {i}");
            }
        }
    }

    #[test]
    fn coherent_gain_matches_mean() {
        for win in Window::ALL {
            let w = win.coefficients(4096);
            let mean = w.iter().sum::<f64>() / w.len() as f64;
            assert!(
                (mean - win.coherent_gain()).abs() < 1e-6,
                "{win}: mean {mean} vs gain {}",
                win.coherent_gain()
            );
        }
    }

    #[test]
    fn enbw_matches_direct_computation() {
        for win in Window::ALL {
            let w = win.coefficients(4096);
            let n = w.len() as f64;
            let sum: f64 = w.iter().sum();
            let sum_sq: f64 = w.iter().map(|x| x * x).sum();
            let direct = n * sum_sq / (sum * sum);
            assert!(
                (direct - win.enbw()).abs() < 1e-3,
                "{win}: direct {direct} vs formula {}",
                win.enbw()
            );
        }
    }

    #[test]
    fn known_enbw_values() {
        assert!((Window::Rectangular.enbw() - 1.0).abs() < 1e-12);
        assert!((Window::Hann.enbw() - 1.5).abs() < 1e-12);
        // Blackman-Harris 4-term ENBW ≈ 2.0044
        assert!((Window::BlackmanHarris.enbw() - 2.0044).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "window length must be non-zero")]
    fn zero_length_panics() {
        Window::Hann.value(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        Window::Hann.value(8, 8);
    }

    #[test]
    fn apply_on_empty_is_noop() {
        let mut empty: Vec<f64> = vec![];
        Window::Hann.apply(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn display_names() {
        assert_eq!(Window::FlatTop.to_string(), "flat-top");
        assert_eq!(Window::default(), Window::Rectangular);
    }
}
