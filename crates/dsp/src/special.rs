//! Special functions for the statistical error analysis of §3: the error
//! function, the standard normal distribution, its quantile, and binomial
//! tail probabilities (Eqs. 11–12 of the paper).

/// The error function `erf(x)`, accurate to about 1.2×10⁻⁷ (Abramowitz &
/// Stegun 7.1.26 rational approximation), refined by one Newton step
/// against the exact derivative for ~1e-12 accuracy on moderate `x`.
///
/// # Examples
///
/// ```
/// let e = bist_dsp::special::erf(1.0);
/// assert!((e - 0.8427007929497149).abs() < 1e-9);
/// ```
pub fn erf(x: f64) -> f64 {
    // A&S 7.1.26 for a first estimate.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * ax);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let mut estimate = 1.0 - poly * (-ax * ax).exp();
    // One Newton refinement: d/dx erf = 2/sqrt(pi) e^{-x^2}. Use a
    // high-accuracy series/continued-fraction target via erfc_cf for the
    // residual where it matters (moderate x).
    if ax < 6.0 {
        let target = 1.0 - erfc_continued_fraction(ax);
        estimate = target;
    }
    sign * estimate
}

/// The complementary error function `erfc(x) = 1 − erf(x)`, accurate for
/// large `x` where direct subtraction would cancel.
///
/// # Examples
///
/// ```
/// // Tail survival: erfc(3) ≈ 2.209e-5
/// let c = bist_dsp::special::erfc(3.0);
/// assert!((c - 2.2090496998585445e-5).abs() < 1e-12);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else if x < 0.5 {
        1.0 - erf_series(x)
    } else {
        erfc_continued_fraction_scaled(x) * (-x * x).exp()
    }
}

/// Maclaurin series for erf, converges fast for small |x|.
fn erf_series(x: f64) -> f64 {
    let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut n = 0u32;
    loop {
        n += 1;
        term *= -x2 / n as f64;
        let add = term / (2 * n + 1) as f64;
        sum += add;
        if add.abs() < 1e-17 * sum.abs().max(1e-300) || n > 200 {
            break;
        }
    }
    two_over_sqrt_pi * sum
}

/// erfc(x)·e^{x²} via Lentz's continued fraction, valid for x ≥ 0.5.
fn erfc_continued_fraction_scaled(x: f64) -> f64 {
    // erfc(x) = e^{-x²}/√π · 1/(x + 1/(2x + 2/(x + 3/(2x + ...))))
    // Evaluate the continued fraction with the modified Lentz method.
    let tiny = 1e-300;
    let mut f = x.max(tiny);
    let mut c = f;
    let mut d = 0.0;
    // CF: erfc(x)·e^{x²}·√π = 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + …)))),
    // i.e. partial numerators a_k = k/2 and denominators b_k = x.
    for k in 1..300 {
        d = x + (k as f64 / 2.0) * d;
        if d.abs() < tiny {
            d = tiny;
        }
        d = 1.0 / d;
        c = x + (k as f64 / 2.0) / c;
        if c.abs() < tiny {
            c = tiny;
        }
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    1.0 / (f * std::f64::consts::PI.sqrt())
}

/// erfc via continued fraction including the exponential factor (helper
/// for [`erf`]'s refinement).
fn erfc_continued_fraction(x: f64) -> f64 {
    if x < 0.5 {
        1.0 - erf_series(x)
    } else {
        erfc_continued_fraction_scaled(x) * (-x * x).exp()
    }
}

/// Standard normal probability density `φ(z)`.
///
/// # Examples
///
/// ```
/// let p = bist_dsp::special::normal_pdf(0.0);
/// assert!((p - 0.3989422804014327).abs() < 1e-15);
/// ```
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (std::f64::consts::TAU).sqrt()
}

/// Standard normal cumulative distribution `Φ(z)`.
///
/// # Examples
///
/// ```
/// let p = bist_dsp::special::normal_cdf(1.959963984540054);
/// assert!((p - 0.975).abs() < 1e-9);
/// ```
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Upper-tail survival function `1 − Φ(z)`, accurate deep into the tail.
///
/// # Examples
///
/// ```
/// // P(Z > 4.76) ≈ 9.7e-7 — the per-code fault probability behind the
/// // paper's 1.4e-4 whole-device figure.
/// let s = bist_dsp::special::normal_sf(4.7619);
/// assert!(s > 9.0e-7 && s < 1.1e-6);
/// ```
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Gaussian PDF with mean `mu` and standard deviation `sigma`.
///
/// # Panics
///
/// Panics if `sigma <= 0`.
pub fn gaussian_pdf(x: f64, mu: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    normal_pdf((x - mu) / sigma) / sigma
}

/// Gaussian CDF with mean `mu` and standard deviation `sigma`.
///
/// # Panics
///
/// Panics if `sigma <= 0`.
pub fn gaussian_cdf(x: f64, mu: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    normal_cdf((x - mu) / sigma)
}

/// Inverse of the standard normal CDF (the quantile function), using the
/// Acklam rational approximation refined by one Halley step.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
///
/// # Examples
///
/// ```
/// let z = bist_dsp::special::normal_quantile(0.975);
/// assert!((z - 1.959963984540054).abs() < 1e-9);
/// ```
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
    // Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    let x = if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    };
    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * std::f64::consts::TAU.sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Natural log of the gamma function (Lanczos approximation).
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = G[0];
    let t = x + 7.5;
    for (i, &g) in G.iter().enumerate().skip(1) {
        a += g / (x + i as f64);
    }
    0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "k ({k}) must not exceed n ({n})");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Binomial probability mass `P(X = k)` for `X ~ Binomial(n, p)`.
///
/// Used for the whole-converter type-I/II approximation of Eqs. 11–12.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `k > n`.
///
/// # Examples
///
/// ```
/// let p = bist_dsp::special::binomial_pmf(4, 2, 0.5);
/// assert!((p - 0.375).abs() < 1e-12);
/// ```
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    assert!(k <= n, "k ({k}) must not exceed n ({n})");
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Probability that at least one of `n` independent events of probability
/// `p` occurs: `1 − (1−p)^n`, computed stably for tiny `p` (the
/// whole-device error probability given a per-code error probability).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// // 64 codes, 1e-9 per-code error: whole-device error ≈ 6.4e-8.
/// let p = bist_dsp::special::at_least_one(64, 1e-9);
/// assert!((p - 6.4e-8).abs() / 6.4e-8 < 1e-6);
/// ```
pub fn at_least_one(n: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    -((-p).ln_1p() * n as f64).exp_m1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-10, "erf({x})");
            assert!((erf(-x) + want).abs() < 1e-10, "erf(-{x})");
        }
    }

    #[test]
    fn erfc_deep_tail() {
        // erfc(5) = 1.5374597944280349e-12
        assert!((erfc(5.0) - 1.537_459_794_428_035e-12).abs() < 1e-20);
        // erfc(10) ≈ 2.088e-45: relative accuracy matters here.
        let v = erfc(10.0);
        assert!((v - 2.0884875837625447e-45).abs() / 2.09e-45 < 1e-6);
    }

    #[test]
    fn erf_plus_erfc_is_one() {
        for i in 0..100 {
            let x = -4.0 + i as f64 * 0.08;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        for i in 0..50 {
            let z = i as f64 * 0.1;
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_known_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((normal_cdf(1.0) - 0.8413447460685429).abs() < 1e-10);
        assert!((normal_sf(2.0) - 0.022750131948179195).abs() < 1e-10);
    }

    #[test]
    fn paper_yield_checks() {
        // ±0.5 LSB spec, σ = 0.21 LSB: P(one code good) = Φ(z)-Φ(-z),
        // z = 0.5/0.21; P(all 64 good) ≈ 0.33 (paper says ~30 %).
        let z = 0.5 / 0.21;
        let p_one = 1.0 - 2.0 * normal_sf(z);
        let p_all = p_one.powi(64);
        assert!((0.28..0.38).contains(&p_all), "p_all = {p_all}");

        // ±1 LSB: P(device faulty) ≈ 1.4e-4 per the paper.
        let z = 1.0 / 0.21;
        let p_one_bad = 2.0 * normal_sf(z);
        let p_dev_bad = at_least_one(64, p_one_bad);
        assert!(
            (0.7e-4..2.5e-4).contains(&p_dev_bad),
            "p_dev_bad = {p_dev_bad}"
        );
    }

    #[test]
    fn quantile_inverts_cdf() {
        for i in 1..200 {
            let p = i as f64 / 200.0;
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn quantile_tails() {
        let z = normal_quantile(1e-9);
        assert!((normal_cdf(z) - 1e-9).abs() / 1e-9 < 1e-6);
    }

    #[test]
    #[should_panic(expected = "p must be in (0,1)")]
    fn quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n+1) = n!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            fact *= n as f64;
            assert!((ln_gamma(n as f64 + 1.0) - fact.ln()).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 20;
        let p = 0.3;
        let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn binomial_pmf_degenerate() {
        assert_eq!(binomial_pmf(10, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(10, 10, 1.0), 1.0);
        assert_eq!(binomial_pmf(10, 3, 0.0), 0.0);
    }

    #[test]
    fn at_least_one_matches_naive_for_moderate_p() {
        let p: f64 = 0.01;
        let n = 64;
        let naive = 1.0 - (1.0 - p).powi(n as i32);
        assert!((at_least_one(n, p) - naive).abs() < 1e-12);
    }

    #[test]
    fn at_least_one_stable_for_tiny_p() {
        let p = 1e-15;
        let v = at_least_one(64, p);
        assert!((v - 64e-15).abs() / 64e-15 < 1e-9);
    }

    #[test]
    fn gaussian_wrappers() {
        assert!((gaussian_pdf(1.0, 1.0, 0.21) - normal_pdf(0.0) / 0.21).abs() < 1e-15);
        assert!((gaussian_cdf(1.0, 1.0, 0.21) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn gaussian_pdf_rejects_bad_sigma() {
        gaussian_pdf(0.0, 0.0, 0.0);
    }
}
