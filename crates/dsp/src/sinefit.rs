#![allow(clippy::needless_range_loop)] // index loops mirror the maths/netlists
//! IEEE-Std-1057 sine-wave fitting for dynamic ADC tests.
//!
//! The three-parameter fit recovers amplitude/phase/offset at a known
//! frequency; the four-parameter fit also refines the frequency by
//! Gauss–Newton iteration. The residual of the fit is the
//! noise-plus-distortion record from which SINAD/ENOB can be computed
//! without coherent sampling — the standard alternative to the FFT test.

use std::error::Error;
use std::fmt;

/// A fitted sine `A·cos(ωt) + B·sin(ωt) + C`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SineFit {
    /// Cosine coefficient.
    pub a: f64,
    /// Sine coefficient.
    pub b: f64,
    /// DC offset.
    pub c: f64,
    /// Angular frequency in radians per sample.
    pub omega: f64,
    /// Root-mean-square residual of the fit.
    pub rms_residual: f64,
}

impl SineFit {
    /// The amplitude `√(A²+B²)`.
    pub fn amplitude(&self) -> f64 {
        self.a.hypot(self.b)
    }

    /// The phase in radians such that the fit equals
    /// `amplitude·cos(ωt + φ) + C`.
    pub fn phase(&self) -> f64 {
        (-self.b).atan2(self.a)
    }

    /// Evaluates the fitted model at sample index `t`.
    pub fn eval(&self, t: f64) -> f64 {
        self.a * (self.omega * t).cos() + self.b * (self.omega * t).sin() + self.c
    }

    /// Effective number of bits from the fit residual, given the
    /// full-scale range of the converter.
    ///
    /// `ENOB = n` when the residual equals ideal quantisation noise
    /// `q/√12` of an `n`-bit converter with full scale `full_scale`.
    ///
    /// # Panics
    ///
    /// Panics if `full_scale <= 0`.
    pub fn enob(&self, full_scale: f64) -> f64 {
        assert!(full_scale > 0.0, "full scale must be positive");
        if self.rms_residual <= 0.0 {
            return f64::INFINITY;
        }
        (full_scale / (self.rms_residual * 12f64.sqrt())).log2()
    }
}

impl fmt::Display for SineFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "amp {:.5} phase {:.4} rad offset {:.5} omega {:.6} rms-res {:.3e}",
            self.amplitude(),
            self.phase(),
            self.c,
            self.omega,
            self.rms_residual
        )
    }
}

/// Error returned when a sine fit cannot be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FitSineError {
    /// Fewer samples than model parameters.
    TooFewSamples {
        /// Samples provided.
        have: usize,
        /// Samples required.
        need: usize,
    },
    /// The normal-equation matrix was singular (e.g. ω = 0 aliasing).
    Singular,
    /// The four-parameter iteration failed to converge.
    NoConvergence,
}

impl fmt::Display for FitSineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitSineError::TooFewSamples { have, need } => {
                write!(f, "sine fit needs at least {need} samples, got {have}")
            }
            FitSineError::Singular => f.write_str("sine fit normal equations are singular"),
            FitSineError::NoConvergence => f.write_str("four-parameter sine fit did not converge"),
        }
    }
}

impl Error for FitSineError {}

/// Solves a small dense symmetric positive system by Gaussian elimination
/// with partial pivoting. Returns `None` if singular.
fn solve(mut m: Vec<Vec<f64>>, mut rhs: Vec<f64>) -> Option<Vec<f64>> {
    let n = rhs.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&a, &b| {
            m[a][col]
                .abs()
                .partial_cmp(&m[b][col].abs())
                .expect("finite")
        })?;
        if m[pivot][col].abs() < 1e-300 {
            return None;
        }
        m.swap(col, pivot);
        rhs.swap(col, pivot);
        for row in (col + 1)..n {
            let k = m[row][col] / m[col][col];
            for c in col..n {
                m[row][c] -= k * m[col][c];
            }
            rhs[row] -= k * rhs[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for c in (row + 1)..n {
            acc -= m[row][c] * x[c];
        }
        x[row] = acc / m[row][row];
    }
    Some(x)
}

/// Three-parameter sine fit at a known angular frequency `omega`
/// (radians/sample), per IEEE Std 1057.
///
/// # Errors
///
/// Returns [`FitSineError::TooFewSamples`] for fewer than 3 samples and
/// [`FitSineError::Singular`] if the normal equations are singular.
///
/// # Examples
///
/// ```
/// use bist_dsp::sinefit::fit_sine_3param;
///
/// # fn main() -> Result<(), bist_dsp::sinefit::FitSineError> {
/// let omega = 0.31;
/// let data: Vec<f64> = (0..256)
///     .map(|t| 1.4 * (omega * t as f64).sin() + 0.2)
///     .collect();
/// let fit = fit_sine_3param(&data, omega)?;
/// assert!((fit.amplitude() - 1.4).abs() < 1e-9);
/// assert!((fit.c - 0.2).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn fit_sine_3param(data: &[f64], omega: f64) -> Result<SineFit, FitSineError> {
    let n = data.len();
    if n < 3 {
        return Err(FitSineError::TooFewSamples { have: n, need: 3 });
    }
    // Least squares on columns [cos(ωt), sin(ωt), 1].
    let mut ata = vec![vec![0.0; 3]; 3];
    let mut atb = vec![0.0; 3];
    for (t, &y) in data.iter().enumerate() {
        let wt = omega * t as f64;
        let row = [wt.cos(), wt.sin(), 1.0];
        for i in 0..3 {
            for j in 0..3 {
                ata[i][j] += row[i] * row[j];
            }
            atb[i] += row[i] * y;
        }
    }
    let sol = solve(ata, atb).ok_or(FitSineError::Singular)?;
    let (a, b, c) = (sol[0], sol[1], sol[2]);
    let mut ss = 0.0;
    for (t, &y) in data.iter().enumerate() {
        let wt = omega * t as f64;
        let r = y - (a * wt.cos() + b * wt.sin() + c);
        ss += r * r;
    }
    Ok(SineFit {
        a,
        b,
        c,
        omega,
        rms_residual: (ss / n as f64).sqrt(),
    })
}

/// Four-parameter sine fit: refines `omega_guess` by Gauss–Newton
/// iteration, per IEEE Std 1057.
///
/// # Errors
///
/// Returns [`FitSineError::TooFewSamples`] for fewer than 4 samples,
/// [`FitSineError::Singular`] for a singular system, or
/// [`FitSineError::NoConvergence`] if 100 iterations do not converge.
///
/// # Examples
///
/// ```
/// use bist_dsp::sinefit::fit_sine_4param;
///
/// # fn main() -> Result<(), bist_dsp::sinefit::FitSineError> {
/// let omega = 0.3123;
/// let data: Vec<f64> = (0..512)
///     .map(|t| 0.9 * (omega * t as f64 + 0.5).cos())
///     .collect();
/// // Start from a small frequency error (e.g. an FFT-peak estimate,
/// // which is within half a bin: |Δω| ≤ π/N).
/// let fit = fit_sine_4param(&data, omega + 0.002)?;
/// assert!((fit.omega - omega).abs() < 1e-9);
/// assert!((fit.amplitude() - 0.9).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn fit_sine_4param(data: &[f64], omega_guess: f64) -> Result<SineFit, FitSineError> {
    let n = data.len();
    if n < 4 {
        return Err(FitSineError::TooFewSamples { have: n, need: 4 });
    }
    let mut omega = omega_guess;
    let mut last = fit_sine_3param(data, omega)?;
    for _ in 0..100 {
        // Columns [cosωt, sinωt, 1, t·(-A sinωt + B cosωt)]
        let (a0, b0) = (last.a, last.b);
        let mut ata = vec![vec![0.0; 4]; 4];
        let mut atb = vec![0.0; 4];
        for (t, &y) in data.iter().enumerate() {
            let tf = t as f64;
            let wt = omega * tf;
            let (s, c) = wt.sin_cos();
            let row = [c, s, 1.0, tf * (-a0 * s + b0 * c)];
            for i in 0..4 {
                for j in 0..4 {
                    ata[i][j] += row[i] * row[j];
                }
                atb[i] += row[i] * y;
            }
        }
        let sol = solve(ata, atb).ok_or(FitSineError::Singular)?;
        let d_omega = sol[3];
        omega += d_omega;
        if !(omega.is_finite()) || omega <= 0.0 {
            return Err(FitSineError::NoConvergence);
        }
        last = fit_sine_3param(data, omega)?;
        if d_omega.abs() < 1e-12 * omega.abs().max(1e-12) {
            return Ok(last);
        }
    }
    Err(FitSineError::NoConvergence)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(n: usize, amp: f64, omega: f64, phase: f64, dc: f64) -> Vec<f64> {
        (0..n)
            .map(|t| amp * (omega * t as f64 + phase).cos() + dc)
            .collect()
    }

    #[test]
    fn three_param_exact_recovery() {
        let data = synth(200, 2.5, 0.17, 1.0, -0.4);
        let fit = fit_sine_3param(&data, 0.17).unwrap();
        assert!((fit.amplitude() - 2.5).abs() < 1e-10);
        assert!((fit.phase() - 1.0).abs() < 1e-10);
        assert!((fit.c + 0.4).abs() < 1e-10);
        assert!(fit.rms_residual < 1e-10);
    }

    #[test]
    fn three_param_too_few_samples() {
        let err = fit_sine_3param(&[1.0, 2.0], 0.5).unwrap_err();
        assert_eq!(err, FitSineError::TooFewSamples { have: 2, need: 3 });
        assert!(err.to_string().contains("3"));
    }

    #[test]
    fn three_param_singular_at_zero_omega() {
        // cos(0·t)=1 duplicates the DC column → singular.
        let data = synth(64, 1.0, 0.3, 0.0, 0.0);
        assert_eq!(
            fit_sine_3param(&data, 0.0).unwrap_err(),
            FitSineError::Singular
        );
    }

    #[test]
    fn four_param_refines_frequency() {
        // Initial guess within an FFT half-bin (π/N ≈ 0.003 for N=1024).
        let data = synth(1024, 1.0, 0.2345, 0.3, 0.1);
        let fit = fit_sine_4param(&data, 0.2345 + 0.002).unwrap();
        assert!((fit.omega - 0.2345).abs() < 1e-10, "omega {}", fit.omega);
        assert!(fit.rms_residual < 1e-9);
    }

    #[test]
    fn four_param_with_noise_still_converges() {
        // Deterministic "noise" from a chaotic map.
        let mut z = 0.37f64;
        let data: Vec<f64> = (0..2048)
            .map(|t| {
                z = (4.0 * z * (1.0 - z)).clamp(1e-9, 1.0 - 1e-9);
                (0.3 * t as f64).sin() + (z - 0.5) * 0.01
            })
            .collect();
        let fit = fit_sine_4param(&data, 0.3004).unwrap();
        assert!((fit.omega - 0.3).abs() < 1e-4);
        assert!((fit.amplitude() - 1.0).abs() < 1e-3);
        // Residual should be on the scale of the injected ±0.005 noise.
        assert!(fit.rms_residual > 1e-4 && fit.rms_residual < 0.01);
    }

    #[test]
    fn enob_of_quantized_sine() {
        // Quantize to 8 bits over [-1, 1]; ENOB ≈ 8.
        let bits = 8;
        let q = 2.0 / (1 << bits) as f64;
        let data: Vec<f64> = synth(4096, 0.999, 0.2347, 0.0, 0.0)
            .into_iter()
            .map(|v| ((v + 1.0) / q).floor() * q - 1.0 + q / 2.0)
            .collect();
        let fit = fit_sine_4param(&data, 0.2347).unwrap();
        let enob = fit.enob(2.0);
        assert!((enob - 8.0).abs() < 0.2, "enob {enob}");
    }

    #[test]
    fn eval_reproduces_samples() {
        let data = synth(50, 1.0, 0.5, 0.2, 0.0);
        let fit = fit_sine_3param(&data, 0.5).unwrap();
        for (t, &y) in data.iter().enumerate() {
            assert!((fit.eval(t as f64) - y).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "full scale must be positive")]
    fn enob_rejects_bad_full_scale() {
        let data = synth(64, 1.0, 0.5, 0.0, 0.0);
        let fit = fit_sine_3param(&data, 0.5).unwrap();
        let _ = fit.enob(0.0);
    }

    #[test]
    fn display_mentions_amplitude() {
        let data = synth(64, 1.0, 0.5, 0.0, 0.0);
        let fit = fit_sine_3param(&data, 0.5).unwrap();
        assert!(fit.to_string().contains("amp"));
    }
}
