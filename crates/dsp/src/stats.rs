//! Descriptive statistics used throughout the reproduction: running
//! moments (Welford), histograms, percentiles and sample correlation.
//!
//! The paper's verification hinges on code-width statistics: the standard
//! deviation (0.16–0.21 LSB from circuit simulation) and the inter-code
//! correlation `ρ = −1/(N−1)` (Eq. 10). These helpers let tests confirm
//! that the behavioural flash model actually produces those statistics.

use std::fmt;

/// Numerically stable running mean/variance accumulator (Welford).
///
/// # Examples
///
/// ```
/// use bist_dsp::stats::Running;
///
/// let mut r = Running::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     r.push(x);
/// }
/// assert_eq!(r.count(), 8);
/// assert!((r.mean() - 5.0).abs() < 1e-12);
/// assert!((r.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Running) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`); 0 when fewer than 1 sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (divides by `n−1`); 0 when fewer than 2.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl fmt::Display for Running {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6} sd={:.6} min={:.6} max={:.6}",
            self.count,
            self.mean,
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

impl Extend<f64> for Running {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut r = Running::new();
        r.extend(iter);
        r
    }
}

/// Sample mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample standard deviation of a slice (0 for n < 2).
pub fn std_dev(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<Running>().std_dev()
}

/// Pearson sample correlation between two equal-length slices.
///
/// Returns 0 when either input is degenerate (constant or shorter than 2).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((bist_dsp::stats::correlation(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "correlation inputs must be equal length");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Average pairwise correlation between distinct positions of repeated
/// vector observations.
///
/// `samples` is a collection of equal-length vectors (e.g. the code-width
/// vector of each Monte-Carlo device). The estimator averages the
/// correlation over all distinct position pairs `(i, j)`, `i < j` — this
/// is what Eq. 10 of the paper predicts to be `−1/(N−1)` for flash
/// converters.
///
/// Returns 0 if there are fewer than 2 samples or fewer than 2 positions.
pub fn mean_pairwise_correlation(samples: &[Vec<f64>]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let dim = samples[0].len();
    if dim < 2 {
        return 0.0;
    }
    assert!(
        samples.iter().all(|s| s.len() == dim),
        "all sample vectors must have equal length"
    );
    // Column means/variances.
    let n = samples.len() as f64;
    let mut means = vec![0.0; dim];
    for s in samples {
        for (m, &v) in means.iter_mut().zip(s) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut vars = vec![0.0; dim];
    for s in samples {
        for ((v, &x), &m) in vars.iter_mut().zip(s).zip(&means) {
            let d = x - m;
            *v += d * d;
        }
    }
    // Average covariance over pairs via the identity
    // Σ_{i≠j} cov_ij = Var(Σ_i x_i) - Σ_i var_ii (all unnormalised).
    let mut var_of_sum = 0.0;
    let sum_means: f64 = means.iter().sum();
    for s in samples {
        let d = s.iter().sum::<f64>() - sum_means;
        var_of_sum += d * d;
    }
    let sum_vars: f64 = vars.iter().sum();
    let off_diag_cov_total = var_of_sum - sum_vars;
    let mean_var = sum_vars / dim as f64;
    if mean_var == 0.0 {
        return 0.0;
    }
    let pairs = (dim * (dim - 1)) as f64;
    (off_diag_cov_total / pairs) / mean_var
}

/// Linear-interpolated percentile (`p` in `[0, 100]`) of unsorted data.
///
/// # Panics
///
/// Panics if `data` is empty or `p` is outside `[0, 100]`.
///
/// # Examples
///
/// ```
/// let data = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(bist_dsp::stats::percentile(&data, 50.0), 2.5);
/// ```
pub fn percentile(data: &[f64], p: f64) -> f64 {
    assert!(!data.is_empty(), "percentile of empty data");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0,100]");
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("data must not contain NaN"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// A fixed-bin histogram over `[lo, hi)` with out-of-range counters.
///
/// # Examples
///
/// ```
/// use bist_dsp::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 10);
/// h.record(0.05);
/// h.record(0.95);
/// h.record(2.0); // overflow
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(9), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    lo_bits: u64,
    hi_bits: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "lo must be below hi");
        Histogram {
            counts: vec![0; bins],
            lo_bits: lo.to_bits(),
            hi_bits: hi.to_bits(),
            underflow: 0,
            overflow: 0,
        }
    }

    fn lo(&self) -> f64 {
        f64::from_bits(self.lo_bits)
    }

    fn hi(&self) -> f64 {
        f64::from_bits(self.hi_bits)
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        let (lo, hi) = (self.lo(), self.hi());
        if x < lo {
            self.underflow += 1;
        } else if x >= hi {
            self.overflow += 1;
        } else {
            let idx = ((x - lo) / (hi - lo) * self.counts.len() as f64) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded observations, including out-of-range.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.counts.iter().sum::<u64>()
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi() - self.lo()) / self.counts.len() as f64;
        self.lo() + (i as f64 + 0.5) * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_empty() {
        let r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.sample_variance(), 0.0);
    }

    #[test]
    fn running_single_value() {
        let mut r = Running::new();
        r.push(42.0);
        assert_eq!(r.mean(), 42.0);
        assert_eq!(r.sample_variance(), 0.0);
        assert_eq!(r.min(), 42.0);
        assert_eq!(r.max(), 42.0);
    }

    #[test]
    fn running_matches_naive() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.13).collect();
        let r: Running = xs.iter().copied().collect();
        let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let naive_var =
            xs.iter().map(|x| (x - naive_mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((r.mean() - naive_mean).abs() < 1e-10);
        assert!((r.sample_variance() - naive_var).abs() < 1e-8);
    }

    #[test]
    fn running_merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut a = Running::new();
        let mut b = Running::new();
        a.extend(xs[..200].iter().copied());
        b.extend(xs[200..].iter().copied());
        a.merge(&b);
        let full: Running = xs.iter().copied().collect();
        assert_eq!(a.count(), full.count());
        assert!((a.mean() - full.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - full.sample_variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Running = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a;
        a.merge(&Running::new());
        assert_eq!(a, before);
        let mut empty = Running::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn correlation_of_anticorrelated() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((correlation(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_degenerate_inputs() {
        assert_eq!(correlation(&[1.0], &[2.0]), 0.0);
        assert_eq!(correlation(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn correlation_length_mismatch_panics() {
        correlation(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn pairwise_correlation_iid_near_zero() {
        // Deterministic pseudo-random iid columns (splitmix64): expect ≈ 0.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        let samples: Vec<Vec<f64>> = (0..400).map(|_| (0..8).map(|_| next()).collect()).collect();
        let rho = mean_pairwise_correlation(&samples);
        assert!(rho.abs() < 0.05, "rho = {rho}");
    }

    #[test]
    fn pairwise_correlation_sum_constrained() {
        // Columns constrained to a fixed sum have rho = -1/(N-1) — the
        // flash-ladder structure of Eq. 10 (here N = 4, rho = -1/3).
        let dim = 4;
        let samples: Vec<Vec<f64>> = (0..2000)
            .map(|s| {
                let mut v: Vec<f64> = (0..dim)
                    .map(|d| (((s * dim + d) as f64 * 78.233).sin() * 12543.123).fract())
                    .collect();
                let m = v.iter().sum::<f64>() / dim as f64;
                for x in &mut v {
                    *x -= m; // enforce fixed (zero) sum
                }
                v
            })
            .collect();
        let rho = mean_pairwise_correlation(&samples);
        assert!((rho + 1.0 / 3.0).abs() < 0.05, "rho = {rho}");
    }

    #[test]
    fn percentile_interpolates() {
        let data = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&data, 0.0), 10.0);
        assert_eq!(percentile(&data, 100.0), 30.0);
        assert_eq!(percentile(&data, 25.0), 15.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0); // lowest edge inclusive
        h.record(9.999); // top bin
        h.record(10.0); // exclusive upper bound -> overflow
        h.record(-0.001); // underflow
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(9), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 4);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "lo must be below hi")]
    fn histogram_bad_range_panics() {
        Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn display_running() {
        let r: Running = [1.0, 2.0].into_iter().collect();
        assert!(r.to_string().contains("n=2"));
    }
}
