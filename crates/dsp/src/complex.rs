//! A minimal complex-number type used by the FFT and spectral analysis.
//!
//! The Rust DSP ecosystem is thin and this reproduction is self-contained,
//! so we carry our own [`Complex64`] rather than depending on `num-complex`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use bist_dsp::complex::Complex64;
///
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::new(3.0, -1.0);
/// assert_eq!(a + b, Complex64::new(4.0, 1.0));
/// assert_eq!(a * Complex64::I, Complex64::new(-2.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates `r * e^{iθ}` from polar coordinates.
    ///
    /// # Examples
    ///
    /// ```
    /// use bist_dsp::complex::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-15 && (z.im - 2.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}`: a unit phasor at angle `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64::from_polar(1.0, theta)
    }

    /// The complex conjugate `re − im·i`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// The magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared magnitude `|z|²` (cheaper than [`abs`](Self::abs)).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// The multiplicative inverse `1/z`.
    ///
    /// Returns NaN components when `self` is zero, mirroring `f64` division.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Whether both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_re(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Complex64::ZERO, Complex64::new(0.0, 0.0));
        assert_eq!(Complex64::ONE, Complex64::new(1.0, 0.0));
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
        assert_eq!(Complex64::from(3.5), Complex64::new(3.5, 0.0));
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(2.0, -3.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z - z, Complex64::ZERO);
        assert_eq!(-z + z, Complex64::ZERO);
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, 4.0);
        // (1+2i)(3+4i) = 3+4i+6i+8i² = -5+10i
        assert_eq!(a * b, Complex64::new(-5.0, 10.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.5, -0.5);
        let b = Complex64::new(-2.0, 7.0);
        let q = (a * b) / b;
        assert!((q - a).abs() < EPS);
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert!(((z * z.conj()).re - 25.0).abs() < EPS);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.5, 0.7);
        assert!((z.abs() - 2.5).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::TAU / 16.0;
            assert!((Complex64::cis(theta).abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn recip_of_zero_is_not_finite() {
        assert!(!Complex64::ZERO.recip().is_finite());
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn roots_of_unity_sum_to_zero() {
        let n = 8;
        let total: Complex64 = (0..n)
            .map(|k| Complex64::cis(std::f64::consts::TAU * k as f64 / n as f64))
            .sum();
        assert!(total.abs() < EPS);
    }
}
