//! Property-based tests of the DSP substrate's mathematical invariants.

use bist_dsp::complex::Complex64;
use bist_dsp::fft::{fft_in_place, ifft_in_place};
use bist_dsp::goertzel::{goertzel_bin, GoertzelBank};
use bist_dsp::integrate::{adaptive_simpson, integrate_with_knots};
use bist_dsp::special::{erf, erfc, normal_cdf, normal_quantile};
use bist_dsp::spectrum::{analyze_tone, ToneAnalysisConfig};
use bist_dsp::stats::Running;
use bist_dsp::window::Window;
use proptest::prelude::*;

fn arb_signal(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-2.0f64..2.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ifft(fft(x)) == x for arbitrary signals.
    #[test]
    fn fft_round_trip(xs in arb_signal(256)) {
        let original: Vec<Complex64> =
            xs.iter().map(|&x| Complex64::from_re(x)).collect();
        let mut data = original.clone();
        fft_in_place(&mut data).expect("256 is a power of two");
        ifft_in_place(&mut data).expect("256 is a power of two");
        for (a, b) in data.iter().zip(&original) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    /// Parseval: time-domain energy equals frequency-domain energy / N.
    #[test]
    fn fft_parseval(xs in arb_signal(128)) {
        let time: f64 = xs.iter().map(|x| x * x).sum();
        let mut data: Vec<Complex64> =
            xs.iter().map(|&x| Complex64::from_re(x)).collect();
        fft_in_place(&mut data).expect("128 is a power of two");
        let freq: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        prop_assert!((time - freq).abs() < 1e-7 * (1.0 + time));
    }

    /// Goertzel equals the FFT bin for arbitrary signals and bins.
    #[test]
    fn goertzel_equals_fft(xs in arb_signal(64), k in 0usize..64) {
        let mut data: Vec<Complex64> =
            xs.iter().map(|&x| Complex64::from_re(x)).collect();
        fft_in_place(&mut data).expect("64 is a power of two");
        let g = goertzel_bin(&xs, k);
        prop_assert!((g - data[k]).abs() < 1e-7 * (1.0 + data[k].abs()));
    }

    /// The streaming Goertzel bank and the materialised FFT analysis
    /// agree to within 1e-9 dB on coherent quantized-sine records, over
    /// random amplitude, phase, fundamental bin and quantizer
    /// resolution — the contract that lets the dynamic verdict path
    /// replace `analyze_tone` sample-for-sample.
    #[test]
    fn goertzel_bank_matches_analyze_tone(
        log_n in 10u32..=12,
        bin_frac in 0.05f64..0.45,
        amplitude in 0.3f64..1.0,
        phase in 0.0f64..std::f64::consts::TAU,
        bits in 4u32..=8,
    ) {
        let n = 1usize << log_n;
        // An odd bin avoids harmonics folding exactly onto the carrier.
        let bin = ((bin_frac * n as f64) as usize) | 1;
        let levels = (1u32 << bits) as f64;
        let record: Vec<f64> = (0..n)
            .map(|i| {
                let v = amplitude
                    * (std::f64::consts::TAU * bin as f64 * i as f64 / n as f64 + phase).sin();
                let code = ((v + 1.0) / 2.0 * levels).floor().clamp(0.0, levels - 1.0);
                (code + 0.5) / levels - 0.5
            })
            .collect();
        let mut bank = GoertzelBank::new(bin, n, 5);
        for &x in &record {
            bank.push(x);
        }
        let stream = bank.powers().metrics();
        let fft = analyze_tone(
            &record,
            &ToneAnalysisConfig { fundamental_bin: Some(bin), ..Default::default() },
        )
        .expect("record length is a power of two");
        prop_assert!(
            (stream.sinad_db - fft.sinad_db).abs() < 1e-9,
            "SINAD {} (stream) vs {} (fft) at n={n} bin={bin} bits={bits}",
            stream.sinad_db, fft.sinad_db
        );
        prop_assert!(
            (stream.thd_db - fft.thd_db).abs() < 1e-9,
            "THD {} (stream) vs {} (fft) at n={n} bin={bin} bits={bits}",
            stream.thd_db, fft.thd_db
        );
        prop_assert!((stream.snr_db - fft.snr_db).abs() < 1e-9);
        prop_assert!((stream.enob - fft.enob).abs() < 1e-9);
    }

    /// Windows are bounded and their coherent gain matches their mean.
    #[test]
    fn window_gain_is_mean(n in 64usize..512) {
        for w in Window::ALL {
            let coeffs = w.coefficients(n);
            let mean = coeffs.iter().sum::<f64>() / n as f64;
            prop_assert!((mean - w.coherent_gain()).abs() < 0.05,
                "{w} at n={n}: mean {mean}");
        }
    }

    /// erf is odd, bounded, and complements erfc.
    #[test]
    fn erf_laws(x in -5.0f64..5.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        prop_assert!(erf(x).abs() <= 1.0);
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-11);
    }

    /// The normal quantile inverts the CDF across the full range.
    #[test]
    fn quantile_inverts_cdf(p in 1e-10f64..1.0) {
        prop_assume!(p < 1.0 - 1e-10);
        let z = normal_quantile(p);
        prop_assert!((normal_cdf(z) - p).abs() < 1e-9 * (1.0 + 1.0 / p.min(1.0 - p)));
    }

    /// Integration is additive over subintervals.
    #[test]
    fn integration_additive(a in -2.0f64..0.0, m in 0.0f64..1.0, b in 1.0f64..3.0) {
        let f = |x: f64| (x * 1.7).sin() + 0.3 * x * x;
        let whole = adaptive_simpson(f, a, b, 1e-12);
        let parts = adaptive_simpson(f, a, m, 1e-12) + adaptive_simpson(f, m, b, 1e-12);
        prop_assert!((whole - parts).abs() < 1e-9);
    }

    /// Knots never change the value of a smooth integral.
    #[test]
    fn knots_are_transparent(knots in prop::collection::vec(0.0f64..1.0, 0..6)) {
        let f = |x: f64| (3.0 * x).cos();
        let plain = adaptive_simpson(f, 0.0, 1.0, 1e-12);
        let knotted = integrate_with_knots(f, 0.0, 1.0, &knots, 1e-12);
        prop_assert!((plain - knotted).abs() < 1e-9);
    }

    /// Welford statistics match naive two-pass computation.
    #[test]
    fn running_matches_naive(xs in arb_signal(200)) {
        let r: Running = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / (xs.len() - 1) as f64;
        prop_assert!((r.mean() - mean).abs() < 1e-10);
        prop_assert!((r.sample_variance() - var).abs() < 1e-9);
    }

    /// Merging Welford accumulators equals one pass, at any split point.
    #[test]
    fn running_merge_associative(xs in arb_signal(120), split in 1usize..119) {
        let mut a: Running = xs[..split].iter().copied().collect();
        let b: Running = xs[split..].iter().copied().collect();
        a.merge(&b);
        let whole: Running = xs.iter().copied().collect();
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-10);
        prop_assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-9);
    }
}
