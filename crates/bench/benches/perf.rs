//! Criterion performance benchmarks for the simulation substrate and
//! the BIST processing path.
//!
//! These quantify the cost of regenerating the paper's experiments:
//! device synthesis, conversion, the LSB monitor (behavioural and RTL),
//! the §3 quadrature, and a full screening experiment.

use bist_adc::flash::FlashConfig;
use bist_adc::histogram::{ramp_linearity, CodeHistogram};
use bist_adc::sampler::{acquire, SamplingConfig};
use bist_adc::signal::Ramp;
use bist_adc::spec::LinearitySpec;
use bist_adc::transfer::Adc;
use bist_adc::types::{Resolution, Volts};
use bist_core::analytic::{code_probabilities, WidthDistribution};
use bist_core::backend::RtlBackend;
use bist_core::config::BistConfig;
use bist_core::harness::{bist_from_capture, plan_ramp};
use bist_core::limits::CountLimits;
use bist_core::lsb_monitor::monitor_bit_stream;
use bist_core::screener::{Screener, Workload};
use bist_dsp::fft::fft_in_place;
use bist_dsp::sinefit::fit_sine_4param;
use bist_dsp::Complex64;
use bist_mc::batch::Batch;
use bist_mc::experiment::Experiment;
use bist_rtl::datapath::LsbProcessor;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn paper_config(bits: u32) -> BistConfig {
    BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(bits)
        .build()
        .expect("paper operating point")
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[1024usize, 4096] {
        let signal: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.01).sin(), 0.0))
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("radix2_{n}"), |b| {
            b.iter_batched(
                || signal.clone(),
                |mut data| {
                    fft_in_place(&mut data).expect("power-of-two length");
                    black_box(data)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_flash(c: &mut Criterion) {
    let mut group = c.benchmark_group("flash");
    let cfg = FlashConfig::paper_device();
    group.bench_function("sample_device", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(cfg.sample(&mut rng)))
    });
    let adc = cfg.sample(&mut StdRng::seed_from_u64(2));
    group.throughput(Throughput::Elements(1));
    group.bench_function("convert", |b| {
        let mut v = 0.0f64;
        b.iter(|| {
            v = (v + 0.37) % 6.4;
            black_box(adc.convert(Volts(v)))
        })
    });
    group.finish();
}

fn bench_monitor(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor");
    let config = paper_config(4);
    let adc = FlashConfig::paper_device().sample(&mut StdRng::seed_from_u64(3));
    let slope = config.delta_s().0 * 0.1 * 1.0e6;
    let capture = acquire(
        &adc,
        &Ramp::new(Volts(-0.2), slope),
        SamplingConfig::new(1.0e6, ((6.4 + 1.4) / slope * 1.0e6) as usize),
    );
    let stream: Vec<bool> = capture.bits(0).collect();
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("behavioural_sweep", |b| {
        b.iter(|| black_box(monitor_bit_stream(&config, &stream)))
    });
    group.bench_function("rtl_sweep", |b| {
        b.iter(|| {
            let mut rtl = LsbProcessor::new(config.to_rtl());
            let mut fails = 0u64;
            for &bit in &stream {
                if let Some(m) = rtl.tick(bit) {
                    if !m.dnl_verdict.is_pass() {
                        fails += 1;
                    }
                }
            }
            black_box(fails)
        })
    });
    group.finish();
}

fn bench_full_bist(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness");
    group.sample_size(30);
    let config = paper_config(4);
    let adc = FlashConfig::paper_device().sample(&mut StdRng::seed_from_u64(4));
    // Full-outcome screening (codes + tallies, not just the verdict) —
    // the cost of `screen_one` plus materialising the `BistOutcome`.
    group.bench_function("screen_one_outcome_4bit", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let mut screener = Screener::new(Workload::static_ramp(config));
        b.iter(|| {
            let verdict = screener.screen_one(&adc, &mut rng);
            black_box(
                screener
                    .take_static_outcome(&verdict)
                    .expect("static workload"),
            )
        })
    });
    group.finish();
}

/// The single-device hot path of the streaming engine: one device in,
/// one verdict out, scratch reused — zero heap allocations after
/// warm-up (asserted by `bist-core`'s `tests/zero_alloc.rs`). The
/// `materialized` variant is the seed two-pass path (capture a `Vec`,
/// then process) kept for run-over-run comparison.
fn bench_device_to_verdict(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(40);
    let config = paper_config(4);
    let adc = FlashConfig::paper_device().sample(&mut StdRng::seed_from_u64(4));
    let samples = {
        // One warm-up sweep sizes the throughput annotation.
        let mut screener = Screener::new(Workload::static_ramp(config));
        let mut rng = StdRng::seed_from_u64(5);
        screener.screen_one(&adc, &mut rng).samples()
    };
    group.throughput(Throughput::Elements(samples));
    group.bench_function("device_to_verdict", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let mut screener = Screener::new(Workload::static_ramp(config));
        b.iter(|| black_box(screener.screen_one(&adc, &mut rng)))
    });
    group.bench_function("device_to_verdict_materialized", |b| {
        // The exact sweep the streaming variant drives, so the two
        // benchmarks convert identical samples.
        let (ramp, sampling) = plan_ramp(&adc, &config);
        b.iter(|| {
            let capture = acquire(&adc, &ramp, sampling);
            black_box(bist_from_capture(&config, &capture))
        })
    });
    // The gate-accurate verdict path on the identical sweep: read next
    // to `device_to_verdict` above, this is the throughput cost of
    // judging with the cycle-accurate BistTop instead of the
    // behavioural accumulators (same codes, same verdict — the
    // differential fleet experiment enforces bit-exactness).
    group.bench_function("rtl_vs_behavioral", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let mut screener = Screener::new(Workload::static_ramp(config)).backend(RtlBackend::new());
        b.iter(|| black_box(screener.screen_one(&adc, &mut rng)))
    });
    group.finish();
}

/// The dynamic counterpart of `device_to_verdict`: one coherent
/// 4096-sample sine record fused stimulus→code→Goertzel-bank→verdict,
/// scratch reused (allocation-free after warm-up, asserted by
/// `zero_alloc.rs`), plus the fixed-point RTL variant for the
/// gate-accuracy cost of the dynamic seam.
fn bench_dynamic_verdict(c: &mut Criterion) {
    use bist_core::dynamic::DynamicConfig;
    let mut group = c.benchmark_group("engine");
    group.sample_size(40);
    let config = DynamicConfig::paper_default();
    let adc = FlashConfig::paper_device().sample(&mut StdRng::seed_from_u64(4));
    group.throughput(Throughput::Elements(config.record_len() as u64));
    group.bench_function("dynamic_verdict", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let mut screener = Screener::new(Workload::dynamic_sine(config));
        b.iter(|| black_box(screener.screen_one(&adc, &mut rng)))
    });
    group.bench_function("dynamic_verdict_rtl", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let mut screener = Screener::new(Workload::dynamic_sine(config)).backend(RtlBackend::new());
        b.iter(|| black_box(screener.screen_one(&adc, &mut rng)))
    });
    group.finish();
}

/// The batched-vs-scalar seam on a small fleet: `Screener::run`
/// (lane-parallel structure-of-arrays engines) against a `screen_one`
/// loop over the same devices — the per-device cost of each entry
/// point, both workloads. The `batched_fleet` bin gates the speedup at
/// fleet scale; this keeps the shape visible in criterion history.
fn bench_batched_vs_scalar(c: &mut Criterion) {
    use bist_core::dynamic::DynamicConfig;
    const FLEET: usize = 32;
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    let config = paper_config(6);
    let dyn_config = DynamicConfig::paper_default();
    let flash = FlashConfig::paper_device();
    let fleet: Vec<_> = (0..FLEET)
        .map(|i| flash.sample(&mut StdRng::seed_from_u64(100 + i as u64)))
        .collect();
    group.throughput(Throughput::Elements(FLEET as u64));
    group.bench_function("batched_vs_scalar/static/scalar", |b| {
        let mut screener = Screener::new(Workload::static_ramp(config));
        b.iter(|| {
            for (i, adc) in fleet.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(i as u64);
                black_box(screener.screen_one(adc, &mut rng).accepted());
            }
        })
    });
    group.bench_function("batched_vs_scalar/static/batched", |b| {
        let mut screener = Screener::new(Workload::static_ramp(config)).lane_width(16);
        b.iter(|| {
            let reports = screener.run(
                fleet
                    .iter()
                    .enumerate()
                    .map(|(i, adc)| (adc, StdRng::seed_from_u64(i as u64))),
            );
            black_box(reports.len())
        })
    });
    group.bench_function("batched_vs_scalar/dynamic/scalar", |b| {
        let mut screener = Screener::new(Workload::dynamic_sine(dyn_config));
        b.iter(|| {
            for (i, adc) in fleet.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(i as u64);
                black_box(screener.screen_one(adc, &mut rng).accepted());
            }
        })
    });
    group.bench_function("batched_vs_scalar/dynamic/batched", |b| {
        let mut screener = Screener::new(Workload::dynamic_sine(dyn_config)).lane_width(16);
        b.iter(|| {
            let reports = screener.run(
                fleet
                    .iter()
                    .enumerate()
                    .map(|(i, adc)| (adc, StdRng::seed_from_u64(i as u64))),
            );
            black_box(reports.len())
        })
    });
    group.finish();
}

fn bench_analytic(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic");
    let spec = LinearitySpec::paper_stringent();
    let dist = WidthDistribution::paper_worst_case();
    let limits = CountLimits::from_spec(&spec, 0.091).expect("paper operating point");
    group.bench_function("code_probabilities", |b| {
        b.iter(|| black_box(code_probabilities(&dist, &spec, 0.091, &limits)))
    });
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram");
    let adc = FlashConfig::paper_device().sample(&mut StdRng::seed_from_u64(6));
    let capture = acquire(
        &adc,
        &Ramp::new(Volts(-0.2), 100.0),
        SamplingConfig::new(1.0e6, 68_000),
    );
    group.bench_function("ramp_linearity_64k_samples", |b| {
        b.iter_batched(
            || CodeHistogram::from_capture(Resolution::SIX_BIT, &capture),
            |h| black_box(ramp_linearity(&h)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_sinefit(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsp");
    group.sample_size(40);
    let omega = 0.2347;
    let data: Vec<f64> = (0..4096).map(|t| (omega * t as f64).sin()).collect();
    group.bench_function("sine_fit_4param_4096", |b| {
        b.iter(|| black_box(fit_sine_4param(&data, omega * 1.0002)))
    });
    group.finish();
}

fn bench_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc");
    group.sample_size(10);
    let config = paper_config(4);
    // Pinned to one thread (`run_range`): `Experiment::run` now fans
    // out over all cores, which would make this number machine-
    // dependent and dominated by thread spawn for a 100-device batch.
    group.bench_function("experiment_100_devices", |b| {
        b.iter(|| {
            let batch = Batch::paper_simulation(9, 100);
            black_box(Experiment::new(batch, config).run_range(0, 100))
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2));
    targets =
        bench_fft,
        bench_flash,
        bench_monitor,
        bench_full_bist,
        bench_device_to_verdict,
        bench_dynamic_verdict,
        bench_batched_vs_scalar,
        bench_analytic,
        bench_histogram,
        bench_sinefit,
        bench_experiment
);
criterion_main!(benches);
