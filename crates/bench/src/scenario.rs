//! Shared scenario runner for the reproduction binaries.
//!
//! Every binary in this crate follows the same shape: read a few
//! `BIST_*` environment knobs, run an experiment (parallel by default —
//! `BIST_WORKERS` overrides the worker count, `0` meaning the available
//! parallelism), print a table or figure, and drop artifacts under
//! `bench/out/`. [`Scenario`] centralises that boilerplate and, on top
//! of it, records a machine-readable perf record
//! (`bench/out/<name>.json`) with the wall-clock time, the knob values
//! actually used, any metrics the binary reports, and the artifact
//! paths — the run-over-run trajectory the CI uploads.

use crate::{env_usize, out_dir, write_csv};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Debug, Clone)]
enum Value {
    Num(f64),
    Int(u64),
    Str(String),
}

impl Value {
    fn render(&self) -> String {
        match self {
            Value::Num(x) if x.is_finite() => format!("{x}"),
            Value::Num(_) => "null".to_owned(),
            Value::Int(n) => format!("{n}"),
            Value::Str(s) => format!("\"{}\"", escape(s)),
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_object(pairs: &[(String, Value)]) -> String {
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("\"{}\": {}", escape(k), v.render()))
        .collect();
    format!("{{{}}}", body.join(", "))
}

/// One reproduction run: knob handling, wall-clock accounting and the
/// `bench/out/<name>.json` perf record.
#[derive(Debug)]
pub struct Scenario {
    name: &'static str,
    start: Instant,
    knobs: Vec<(String, Value)>,
    metrics: Vec<(String, Value)>,
    artifacts: Vec<String>,
}

impl Scenario {
    /// Runs `body` as the scenario `name`, then emits the perf record
    /// and a wall-time line.
    pub fn run(name: &'static str, body: impl FnOnce(&mut Scenario)) {
        let mut sc = Scenario {
            name,
            start: Instant::now(),
            knobs: Vec::new(),
            metrics: Vec::new(),
            artifacts: Vec::new(),
        };
        body(&mut sc);
        let path = sc.finish();
        eprintln!("wrote {}", path.display());
    }

    /// Reads a `usize` environment knob with a default, recording the
    /// value used in the perf record.
    pub fn usize_knob(&mut self, env: &str, default: usize) -> usize {
        let v = env_usize(env, default);
        self.knobs.push((env.to_owned(), Value::Int(v as u64)));
        v
    }

    /// The master seed (`BIST_SEED`, default 1997).
    pub fn seed(&mut self) -> u64 {
        self.usize_knob("BIST_SEED", 1997) as u64
    }

    /// The worker-thread knob (`BIST_WORKERS`, default 0 = available
    /// parallelism) — the binaries hand this to the `bist-mc` fan-out.
    pub fn workers(&mut self) -> usize {
        self.usize_knob("BIST_WORKERS", 0)
    }

    /// Records a numeric metric (throughput, agreement rate, …).
    pub fn metric(&mut self, key: &str, value: f64) {
        self.metrics.push((key.to_owned(), Value::Num(value)));
    }

    /// Records a count metric.
    pub fn metric_count(&mut self, key: &str, value: u64) {
        self.metrics.push((key.to_owned(), Value::Int(value)));
    }

    /// Records a string metric.
    pub fn metric_str(&mut self, key: &str, value: &str) {
        self.metrics
            .push((key.to_owned(), Value::Str(value.to_owned())));
    }

    /// Writes a CSV artifact under `bench/out/` (see
    /// [`crate::write_csv`]) and records it in the perf record.
    pub fn csv(&mut self, name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
        let path = write_csv(name, header, rows);
        self.artifacts.push(name.to_owned());
        path
    }

    /// Seconds elapsed since the scenario started.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn finish(self) -> PathBuf {
        let elapsed = self.elapsed_seconds();
        println!("[{}] wall time {elapsed:.2} s", self.name);
        let artifacts: Vec<String> = self
            .artifacts
            .iter()
            .map(|a| format!("\"{}\"", escape(a)))
            .collect();
        let json = format!(
            "{{\n  \"scenario\": \"{}\",\n  \"elapsed_seconds\": {elapsed},\n  \
             \"knobs\": {},\n  \"metrics\": {},\n  \"artifacts\": [{}]\n}}\n",
            escape(self.name),
            render_object(&self.knobs),
            render_object(&self.metrics),
            artifacts.join(", "),
        );
        let path = out_dir().join(format!("{}.json", self.name));
        fs::write(&path, json).expect("write perf record");
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_emits_perf_record() {
        Scenario::run("scenario_selftest", |sc| {
            let n = sc.usize_knob("BIST_SURELY_UNSET_VAR", 7);
            assert_eq!(n, 7);
            assert_eq!(sc.seed(), 1997);
            sc.metric("throughput", 123.5);
            sc.metric_count("devices", 7);
            sc.metric_str("note", "quoted \"text\"");
            let p = sc.csv("scenario_selftest.csv", &["a"], &[vec!["1".into()]]);
            assert!(p.is_file());
        });
        let record = out_dir().join("scenario_selftest.json");
        let json = fs::read_to_string(&record).unwrap();
        assert!(json.contains("\"scenario\": \"scenario_selftest\""));
        assert!(json.contains("\"BIST_SURELY_UNSET_VAR\": 7"));
        assert!(json.contains("\"BIST_SEED\": 1997"));
        assert!(json.contains("\"throughput\": 123.5"));
        assert!(json.contains("\"note\": \"quoted \\\"text\\\"\""));
        assert!(json.contains("\"scenario_selftest.csv\""));
        assert!(json.contains("\"elapsed_seconds\": "));
        fs::remove_file(record).ok();
        fs::remove_file(out_dir().join("scenario_selftest.csv")).ok();
    }

    #[test]
    fn json_escaping_handles_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_metric_renders_null() {
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(1.5).render(), "1.5");
    }
}
