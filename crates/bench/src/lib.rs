//! Shared helpers for the reproduction binaries: the [`scenario`]
//! runner, ASCII plotting, CSV emission and output-directory management.
//!
//! Every binary in this crate regenerates one table or figure of the
//! ED&TC 1997 paper (see DESIGN.md §4 for the experiment index), prints
//! it next to the published values, and drops a CSV plus a
//! machine-readable `<name>.json` perf record under `bench/out/`. The
//! binaries run their Monte-Carlo batches in parallel by default;
//! `BIST_WORKERS` overrides the worker count (0 = available
//! parallelism) alongside the existing `BIST_*` batch knobs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod scenario;

pub use scenario::Scenario;

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Returns the output directory for experiment artifacts (`bench/out/`
/// next to the workspace root), creating it if needed.
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn out_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("out");
    fs::create_dir_all(&dir).expect("create bench/out");
    dir
}

/// Writes rows of `(header, rows)` as a CSV file under [`out_dir`].
///
/// # Panics
///
/// Panics on I/O errors (acceptable in experiment binaries).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = out_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    path
}

/// Returns the committed performance-baseline directory
/// (`crates/bench/baseline/`) holding the perf records the CI
/// `perf-baseline` job diffs fresh runs against.
pub fn baseline_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("baseline")
}

/// Reads an environment variable as usize with a default — the knob used
/// by the binaries for batch sizes (e.g. `BIST_BATCH=500 cargo run ...`).
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads an environment variable as f64 with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Extracts the numeric metrics of a `Scenario` perf record (the flat
/// JSON written to `bench/out/<name>.json`): every `"key": number`
/// pair of its `"metrics"` object, in file order. String and `null`
/// metrics are skipped. Tolerant of the record's exact whitespace but
/// specific to this crate's own flat format — not a general JSON
/// parser.
pub fn record_metrics(json: &str) -> Vec<(String, f64)> {
    let Some(start) = json.find("\"metrics\":") else {
        return Vec::new();
    };
    let rest = &json[start + "\"metrics\":".len()..];
    let Some(open) = rest.find('{') else {
        return Vec::new();
    };
    let body = &rest[open + 1..];
    let Some(end) = flat_object_end(body) else {
        return Vec::new();
    };
    parse_flat_pairs(&body[..end])
}

/// Looks up one numeric metric of a perf record.
pub fn record_metric(json: &str, key: &str) -> Option<f64> {
    record_metrics(json)
        .into_iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

/// Index of the `}` closing a flat (depth-1) object body, respecting
/// string quoting.
fn flat_object_end(body: &str) -> Option<usize> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '}' if !in_string => return Some(i),
            _ => {}
        }
    }
    None
}

/// Splits a flat object body into `(key, numeric value)` pairs.
fn parse_flat_pairs(body: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(k0) = rest.find('"') {
        let after_key = &rest[k0 + 1..];
        let Some(k1) = after_key.find('"') else { break };
        let key = &after_key[..k1];
        let after = &after_key[k1 + 1..];
        let Some(colon) = after.find(':') else { break };
        let value_str = &after[colon + 1..];
        // The value ends at the next comma outside quotes, or the end.
        let mut in_string = false;
        let mut escaped = false;
        let mut end = value_str.len();
        for (i, c) in value_str.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_string => escaped = true,
                '"' => in_string = !in_string,
                ',' if !in_string => {
                    end = i;
                    break;
                }
                _ => {}
            }
        }
        let raw = value_str[..end].trim();
        if let Ok(v) = raw.parse::<f64>() {
            out.push((key.to_owned(), v));
        }
        rest = &value_str[end..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    out
}

/// A minimal ASCII scatter/line plot for the figure binaries.
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    width: usize,
    height: usize,
    log_y: bool,
    series: Vec<(char, Vec<(f64, f64)>)>,
    title: String,
}

impl AsciiPlot {
    /// Creates a plot canvas.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is below 8.
    pub fn new(title: &str, width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 8, "canvas too small");
        AsciiPlot {
            width,
            height,
            log_y: false,
            series: Vec::new(),
            title: title.to_owned(),
        }
    }

    /// Switches the y axis to log scale (non-positive values dropped).
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Adds a series drawn with `marker`.
    pub fn series(mut self, marker: char, points: &[(f64, f64)]) -> Self {
        self.series.push((marker, points.to_vec()));
        self
    }

    /// Renders the plot.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, p)| p.iter().copied())
            .filter(|&(_, y)| !self.log_y || y > 0.0)
            .collect();
        if pts.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        let tx = |y: f64| if self.log_y { y.log10() } else { y };
        let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            x_lo = x_lo.min(x);
            x_hi = x_hi.max(x);
            y_lo = y_lo.min(tx(y));
            y_hi = y_hi.max(tx(y));
        }
        if (x_hi - x_lo).abs() < 1e-300 {
            x_hi = x_lo + 1.0;
        }
        if (y_hi - y_lo).abs() < 1e-300 {
            y_hi = y_lo + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (marker, series) in &self.series {
            for &(x, y) in series {
                if self.log_y && y <= 0.0 {
                    continue;
                }
                let cx = ((x - x_lo) / (x_hi - x_lo) * (self.width - 1) as f64).round() as usize;
                let cy =
                    ((tx(y) - y_lo) / (y_hi - y_lo) * (self.height - 1) as f64).round() as usize;
                grid[self.height - 1 - cy][cx] = *marker;
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let y_label = |v: f64| {
            if self.log_y {
                format!("{:>9.2e}", 10f64.powf(v))
            } else {
                format!("{v:>9.4}")
            }
        };
        for (i, row) in grid.iter().enumerate() {
            let frac = 1.0 - i as f64 / (self.height - 1) as f64;
            let yv = y_lo + frac * (y_hi - y_lo);
            let label = if i == 0 || i == self.height - 1 || i == self.height / 2 {
                y_label(yv)
            } else {
                " ".repeat(9)
            };
            out.push_str(&format!("{label} |{}\n", row.iter().collect::<String>()));
        }
        out.push_str(&format!(
            "{} +{}\n{} {:<12.4}{:>width$.4}\n",
            " ".repeat(9),
            "-".repeat(self.width),
            " ".repeat(9),
            x_lo,
            x_hi,
            width = self.width.saturating_sub(12),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dir_exists() {
        assert!(out_dir().is_dir());
    }

    #[test]
    fn csv_round_trip() {
        let p = write_csv("test_tmp.csv", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        let content = fs::read_to_string(&p).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        fs::remove_file(p).ok();
    }

    #[test]
    fn env_usize_default() {
        assert_eq!(env_usize("BIST_SURELY_UNSET_VAR", 42), 42);
        assert_eq!(env_f64("BIST_SURELY_UNSET_VAR", 0.25), 0.25);
    }

    #[test]
    fn record_metrics_parses_the_scenario_format() {
        let json = "{\n  \"scenario\": \"x\",\n  \"elapsed_seconds\": 1.5,\n  \
                    \"knobs\": {\"BIST_DEVICES\": 100},\n  \
                    \"metrics\": {\"divergences\": 0, \"rate\": 0.975, \
                    \"note\": \"has, comma and } brace\", \"nan_metric\": null, \
                    \"devices_per_s\": 1234.5},\n  \"artifacts\": []\n}\n";
        let m = record_metrics(json);
        assert_eq!(
            m,
            vec![
                ("divergences".to_owned(), 0.0),
                ("rate".to_owned(), 0.975),
                ("devices_per_s".to_owned(), 1234.5),
            ]
        );
        assert_eq!(record_metric(json, "devices_per_s"), Some(1234.5));
        assert_eq!(record_metric(json, "missing"), None);
        assert!(record_metrics("not json").is_empty());
    }

    #[test]
    fn plot_renders_markers() {
        let p = AsciiPlot::new("demo", 40, 10)
            .series('x', &[(0.0, 0.0), (1.0, 1.0)])
            .series('o', &[(0.5, 0.5)]);
        let r = p.render();
        assert!(r.contains('x'));
        assert!(r.contains('o'));
        assert!(r.starts_with("demo\n"));
    }

    #[test]
    fn log_plot_drops_nonpositive() {
        let p = AsciiPlot::new("log", 40, 10)
            .log_y()
            .series('x', &[(0.0, 0.0), (1.0, 0.1), (2.0, 0.01)]);
        let r = p.render();
        assert!(r.contains('x'));
    }

    #[test]
    fn empty_plot_safe() {
        let p = AsciiPlot::new("empty", 40, 10);
        assert!(p.render().contains("no data"));
    }
}
