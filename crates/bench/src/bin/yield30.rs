//! Experiments E6/E7: the two yield anchors of §4.
//!
//! * E6 — "only 30 % of the flash A/D converters are good under the
//!   increased DNL specifications of ±0.5 LSB".
//! * E7 — "the probability that an A/D converter is faulty on the actual
//!   DNL specifications of ±1 LSB is very small (1.4×10⁻⁴)".
//!
//! Both are checked three ways: the closed-form yield model, a batch of
//! iid-width devices, and a batch of physically-modelled flash devices.
//!
//! Knobs: `BIST_BATCH` (default 20000), `BIST_SEED`, `BIST_WORKERS`
//! (0 = all cores).

use bist_adc::spec::LinearitySpec;
use bist_bench::Scenario;
use bist_core::report::{fmt_prob, Table};
use bist_core::yield_model::YieldModel;
use bist_mc::batch::Batch;
use bist_mc::estimate::Proportion;
use bist_mc::parallel::classify_parallel;

fn main() {
    Scenario::run("yield30", run);
}

fn run(sc: &mut Scenario) {
    let n = sc.usize_knob("BIST_BATCH", 20_000);
    let seed = sc.seed();
    let workers = sc.workers();
    let model = YieldModel::paper_device();
    let stringent = LinearitySpec::paper_stringent();
    let actual = LinearitySpec::paper_actual();

    let iid = Batch::paper_simulation(seed, n);
    let mut flash = Batch::paper_measurement(seed ^ 0xF1A5);
    flash.size = n;

    let iid_stringent = classify_parallel(&iid, &stringent, workers);
    let flash_stringent = classify_parallel(&flash, &stringent, workers);
    let iid_actual_faulty = Proportion::new(
        iid.size as u64 - classify_parallel(&iid, &actual, workers).successes(),
        iid.size as u64,
    );
    let flash_actual_faulty = Proportion::new(
        flash.size as u64 - classify_parallel(&flash, &actual, workers).successes(),
        flash.size as u64,
    );

    let mut t = Table::new(&["quantity", "paper", "theory", "iid MC", "flash MC"])
        .with_title(format!("Yield anchors (σ = 0.21 LSB, {n} devices/batch)").as_str());
    t.row_owned(vec![
        "P(good) @ ±0.5 LSB".into(),
        "~0.30".into(),
        format!("{:.4}", model.p_device_good(&stringent)),
        fmt_prob(iid_stringent.point()),
        fmt_prob(flash_stringent.point()),
    ]);
    t.row_owned(vec![
        "P(faulty) @ ±1 LSB".into(),
        "1.4e-4".into(),
        fmt_prob(Some(model.p_device_faulty(&actual))),
        fmt_prob(iid_actual_faulty.point()),
        fmt_prob(flash_actual_faulty.point()),
    ]);
    println!("{t}");
    println!("flash MC stringent yield interval: {flash_stringent}");
    println!("iid MC  stringent yield interval: {iid_stringent}");

    // Yield curve across spec limits (context for the two anchors).
    let limits: Vec<f64> = (3..=15).map(|i| i as f64 * 0.1).collect();
    let curve = model.yield_curve(&limits);
    println!("\nyield vs DNL limit (theory):");
    for (l, y) in &curve {
        println!("  ±{l:.1} LSB: {y:.6}");
    }
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|(l, y)| vec![l.to_string(), y.to_string()])
        .collect();
    let path = sc.csv(
        "yield_curve.csv",
        &["dnl_limit_lsb", "p_device_good"],
        &rows,
    );
    eprintln!("wrote {}", path.display());
}
