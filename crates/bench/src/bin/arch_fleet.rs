//! Experiment E17: **architecture-zoo fleet validation** — the
//! `DeviceSource` seam across flash, iid-width, SAR and pipeline
//! silicon, plus the per-architecture priors loop, gated end to end.
//!
//! Part 1 runs `bist_mc::differential::run_arch_differential`: every
//! zoo paper preset × counter width, three runs per device × cell on
//! bit-identical streams — the full behavioural sweep (ground truth),
//! the sequenced behavioural path and the sequenced gate-accurate RTL
//! path. The two sequenced backends must latch **identical decisions
//! at identical sample indices** for every architecture (any
//! divergence exits 1): the paper's architecture-agnostic claim,
//! checked at the gate level.
//!
//! Part 2 screens one mixed zoo fleet (the architectures interleaved
//! by the zoo's seeded deal) through the sequenced pooled engine at 1
//! and 4 workers and demands bit-identical reports — which worker (or
//! architecture) a device lands on may never change its verdict. An
//! FNV-1a checksum over the reports is emitted as `report_checksum`
//! so two runs at different `BIST_WORKERS` can be diffed from their
//! JSON records alone.
//!
//! Part 3 closes the priors loop: the part-1 tallies seed a
//! `bist_core::priors::PriorsBank`, and held-out per-architecture
//! fleets are screened under the base policy vs the bank's
//! architecture-conditioned policy. Gates: the tuned policy must
//! reduce mean samples-to-decision on **at least one** architecture,
//! and on **every** architecture its drift from full-sweep ground
//! truth must stay within a binomial allowance of the base policy's —
//! priors tighten the schedule, never the error budgets. Per-tuned-run
//! `<arch>_devices_per_s` figures feed the committed baseline gate.
//!
//! Knobs: `BIST_DEVICES` (differential devices, default 64),
//! `BIST_ZOO_DEVICES` (mixed fleet, default 200), `BIST_EVAL_DEVICES`
//! (held-out per-arch fleets, default 150), `BIST_SEED`,
//! `BIST_WORKERS`.

use bist_adc::spec::LinearitySpec;
use bist_adc::transfer::TransferFunction;
use bist_adc::types::Resolution;
use bist_bench::Scenario;
use bist_core::config::BistConfig;
use bist_core::priors::PriorsBank;
use bist_core::report::Table;
use bist_core::screener::{ScreenVerdict, Screener, Workload};
use bist_core::sequencer::SequencerConfig;
use bist_core::source::{Architecture, SourceSpec, Zoo};
use bist_mc::batch::Batch;
use bist_mc::differential::run_arch_differential;
use std::time::Instant;

/// Held-out evaluation fleets draw from a different seed space than
/// the calibration sweep.
const EVAL_SEED_XOR: u64 = 0xa5c4_f1ee;
/// Noise-stream salt of the evaluation fleets.
const EVAL_NOISE_SALT: usize = 0x0a5c_0000_0000_0000;

fn main() {
    let mut clean = true;
    Scenario::run("arch_fleet", |sc| clean = run(sc));
    if !clean {
        eprintln!("arch_fleet: divergence, worker-determinism or priors gate failed");
        std::process::exit(1);
    }
}

fn eval_config() -> BistConfig {
    BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(5)
        .build()
        .expect("paper operating point")
}

/// Accumulated outcome of one sequenced screening pass.
struct Pass {
    accepted: Vec<bool>,
    samples: u64,
    early_stops: u64,
    elapsed: f64,
}

fn sequenced_pass(policy: SequencerConfig, fleet: &[TransferFunction], batch: &Batch) -> Pass {
    let start = Instant::now();
    let reports = Screener::new(Workload::static_ramp(eval_config()))
        .sequencer(policy)
        .run(
            fleet
                .iter()
                .enumerate()
                .map(|(i, tf)| (tf, batch.device_rng(i ^ EVAL_NOISE_SALT))),
        );
    let elapsed = start.elapsed().as_secs_f64();
    let mut pass = Pass {
        accepted: Vec::with_capacity(fleet.len()),
        samples: 0,
        early_stops: 0,
        elapsed,
    };
    for r in &reports {
        let o = r.verdict.as_static().expect("static workload");
        pass.accepted.push(o.accepted());
        pass.samples += o.samples_consumed();
        pass.early_stops += u64::from(o.decision.stops());
    }
    pass
}

// bist-lint: hot-path — drift scoring over a full fleet: pure counting, no allocation
fn drift_counts(truth: &[bool], verdicts: &[bool]) -> (u64, u64, u64) {
    let mut good = 0u64;
    let mut drift_i = 0u64;
    let mut drift_ii = 0u64;
    for (&t, &v) in truth.iter().zip(verdicts) {
        good += u64::from(t);
        drift_i += u64::from(t && !v);
        drift_ii += u64::from(!t && v);
    }
    (good, drift_i, drift_ii)
}

#[allow(clippy::too_many_lines)]
fn run(sc: &mut Scenario) -> bool {
    let devices = sc.usize_knob("BIST_DEVICES", 64);
    let zoo_devices = sc.usize_knob("BIST_ZOO_DEVICES", 200);
    let eval_devices = sc.usize_knob("BIST_EVAL_DEVICES", 150);
    let seed = sc.seed();
    let workers = sc.workers();
    let policy = SequencerConfig::default();

    // --- Part 1: per-architecture differential ----------------------
    let diff = run_arch_differential(seed, &policy, devices, workers);
    println!("arch differential  {diff}");
    let mut table = Table::new(&[
        "cell",
        "compared",
        "latch-exact",
        "early-stop %",
        "samp/dev full",
        "samp/dev seq",
        "drift I",
        "drift II",
    ])
    .with_title("E17 per-architecture differential: every architecture, both backends");
    let mut csv = Vec::new();
    for t in &diff.per_scenario {
        let n = t.comparisons.max(1);
        table.row_owned(vec![
            t.scenario.to_string(),
            t.comparisons.to_string(),
            t.agreements.to_string(),
            format!("{:.0}", 100.0 * t.early_stops as f64 / n as f64),
            format!("{:.0}", t.full_samples as f64 / n as f64),
            format!("{:.0}", t.seq_samples as f64 / n as f64),
            t.drift_i.to_string(),
            t.drift_ii.to_string(),
        ]);
        csv.push(vec![
            t.scenario.to_string(),
            t.comparisons.to_string(),
            t.agreements.to_string(),
            t.early_stops.to_string(),
            t.full_samples.to_string(),
            t.seq_samples.to_string(),
            t.drift_i.to_string(),
            t.drift_ii.to_string(),
        ]);
    }
    println!("{table}");
    for d in diff.divergences.iter().take(5) {
        println!("DIVERGENCE {d}");
    }

    // --- Part 2: mixed-zoo worker determinism -----------------------
    let zoo = Zoo::paper().with_seed(seed);
    let census = zoo.census(zoo_devices);
    println!(
        "mixed fleet of {zoo_devices}: census flash {} / iid {} / sar {} / pipeline {}",
        census[0], census[1], census[2], census[3]
    );
    let zoo_run = |w: usize| {
        Screener::new(Workload::static_ramp(eval_config()))
            .sequencer(policy)
            .workers(w)
            .run(zoo.fleet(zoo_devices))
            .into_iter()
            .map(|r| (r.device, r.verdict))
            .collect::<Vec<(usize, ScreenVerdict)>>()
    };
    let start = Instant::now();
    let w1 = zoo_run(1);
    let zoo_elapsed = start.elapsed().as_secs_f64();
    let w4 = zoo_run(4);
    let workers_identical = w1 == w4;
    if !workers_identical {
        println!("DIVERGENCE mixed-zoo reports differ between 1 and 4 workers");
    }
    let mut checksum = Fnv::new();
    checksum.fold(&w1);

    // --- Part 3: the priors loop ------------------------------------
    let mut bank = PriorsBank::new(policy);
    diff.seed_priors(&mut bank);
    println!("{bank}");

    let mut improved = 0u32;
    let mut drift_ok = true;
    let allow =
        |budget: f64, n: u64| (budget * n as f64 + 3.0 * (budget * n as f64).sqrt()).ceil() as u64;
    let mut prior_table = Table::new(&[
        "arch",
        "yield",
        "samp/dev base",
        "samp/dev tuned",
        "saving",
        "drift I b/t",
        "drift II b/t",
        "tuned dev/s",
    ])
    .with_title("E17 priors: held-out fleets, base vs architecture-conditioned policy");
    for source in [
        SourceSpec::paper_flash(),
        SourceSpec::paper_iid(),
        SourceSpec::paper_sar(),
        SourceSpec::paper_pipeline(),
    ] {
        let arch = source_arch(source);
        let batch = Batch::of(source)
            .seed(seed ^ EVAL_SEED_XOR)
            .size(eval_devices);
        let fleet: Vec<TransferFunction> = (0..eval_devices).map(|i| batch.device(i)).collect();
        // Full-sweep ground truth (no sequencer), same noise streams.
        let truth: Vec<bool> = Screener::new(Workload::static_ramp(eval_config()))
            .run(
                fleet
                    .iter()
                    .enumerate()
                    .map(|(i, tf)| (tf, batch.device_rng(i ^ EVAL_NOISE_SALT))),
            )
            .into_iter()
            .map(|r| r.verdict.accepted())
            .collect();
        let base = sequenced_pass(policy, &fleet, &batch);
        let tuned_policy = bank.policy_for(arch);
        let tuned = sequenced_pass(tuned_policy, &fleet, &batch);

        let (good, base_i, base_ii) = drift_counts(&truth, &base.accepted);
        let (_, tuned_i, tuned_ii) = drift_counts(&truth, &tuned.accepted);
        let bad = eval_devices as u64 - good;
        let arch_drift_ok = tuned_i <= base_i + allow(policy.alpha, good)
            && tuned_ii <= base_ii + allow(policy.beta, bad);
        drift_ok &= arch_drift_ok;
        let base_mean = base.samples as f64 / eval_devices as f64;
        let tuned_mean = tuned.samples as f64 / eval_devices as f64;
        if tuned.samples < base.samples {
            improved += 1;
        }
        let dps = eval_devices as f64 / tuned.elapsed.max(1e-9);
        prior_table.row_owned(vec![
            arch.label().to_string(),
            format!("{:.2}", good as f64 / eval_devices as f64),
            format!("{base_mean:.0}"),
            format!("{tuned_mean:.0}"),
            format!("{:+.1}%", 100.0 * (tuned_mean - base_mean) / base_mean),
            format!("{base_i}/{tuned_i}"),
            format!("{base_ii}/{tuned_ii}"),
            format!("{dps:.0}"),
        ]);
        if !arch_drift_ok {
            println!(
                "DRIFT {}: tuned policy drifts past the base allowance \
                 (I {base_i}->{tuned_i}, II {base_ii}->{tuned_ii})",
                arch.label()
            );
        }
        let label = arch.label();
        sc.metric(&format!("{label}_base_mean_samples"), base_mean);
        sc.metric(&format!("{label}_tuned_mean_samples"), tuned_mean);
        sc.metric_count(&format!("{label}_tuned_drift_i"), tuned_i);
        sc.metric_count(&format!("{label}_tuned_drift_ii"), tuned_ii);
        sc.metric(&format!("{label}_devices_per_s"), dps);
        sc.metric(
            &format!("{label}_early_stop_rate"),
            tuned.early_stops as f64 / eval_devices as f64,
        );
    }
    println!("{prior_table}");

    sc.metric_count("devices", devices as u64);
    sc.metric_count("comparisons", diff.comparisons);
    sc.metric_count("divergences", diff.divergences.len() as u64);
    sc.metric("early_stop_rate", diff.early_stop_rate());
    sc.metric("type_i_drift", diff.type_i_drift());
    sc.metric("type_ii_drift", diff.type_ii_drift());
    sc.metric_count("priors_improved_archs", u64::from(improved));
    sc.metric_count("workers_identical", u64::from(workers_identical));
    sc.metric_count("report_checksum", checksum.finish());
    sc.metric(
        "zoo_devices_per_s",
        zoo_devices as f64 / zoo_elapsed.max(1e-9),
    );
    let path = sc.csv(
        "arch_fleet.csv",
        &[
            "cell",
            "compared",
            "latch_exact",
            "early_stops",
            "full_samples",
            "seq_samples",
            "drift_i",
            "drift_ii",
        ],
        &csv,
    );
    eprintln!("wrote {}", path.display());

    let clean =
        diff.comparisons > 0 && diff.is_clean() && workers_identical && improved >= 1 && drift_ok;
    if clean {
        println!("reading: every architecture in the zoo latches the identical early-stop");
        println!("decision on both backends, the mixed fleet's reports are invariant in the");
        println!(
            "worker count, and the priors bank buys a samples-to-decision saving on \
             {improved}/4"
        );
        println!("architectures without spending any extra type I/II drift — the sequencer's");
        println!("schedule now bends to the silicon, its budgets do not.");
    } else {
        println!(
            "FAIL: clean={} workers_identical={workers_identical} improved={improved} \
             drift_ok={drift_ok}",
            diff.is_clean()
        );
    }
    clean
}

fn source_arch(source: SourceSpec) -> Architecture {
    use bist_core::source::DeviceSource;
    source.architecture()
}

/// FNV-1a over the rendered reports, matching `batched_fleet`'s
/// checksum so worker-count runs can be diffed from JSON records.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn fold(&mut self, reports: &[(usize, ScreenVerdict)]) {
        for (device, verdict) in reports {
            for b in format!("{device}:{verdict:?};").bytes() {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}
