//! Experiment E14: the §1/§5 economics — test pins, parallelism, data
//! volume and per-device test time for the conventional, partial-BIST
//! and full-BIST styles.
//!
//! "For chips containing more than one A/D converter the proposed
//! methodology has a major advantage, since several A/D converters can
//! easily be tested in parallel which reduces the test time and test
//! costs significantly."

use bist_adc::spec::LinearitySpec;
use bist_adc::types::Resolution;
use bist_bench::Scenario;
use bist_core::config::BistConfig;
use bist_core::economics::{plan_cost, TestStyle};
use bist_core::report::Table;

fn main() {
    Scenario::run("test_economics", run);
}

fn run(sc: &mut Scenario) {
    let tester_pins = 64;
    let sample_rate = 1.0e6;
    let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(4)
        .build()
        .expect("paper operating point");

    let styles = [
        TestStyle::Conventional,
        TestStyle::PartialBist { q: 3 },
        TestStyle::PartialBist { q: 2 },
        TestStyle::PartialBist { q: 1 },
        TestStyle::FullBist,
    ];
    let mut t = Table::new(&[
        "style",
        "pins/conv",
        "parallel (64-pin tester)",
        "s/converter",
        "tester bits/conv",
    ])
    .with_title("Test economics — 6-bit converter, 4-bit counter, 1 MHz sampling");
    let mut csv = Vec::new();
    for style in styles {
        let cost = plan_cost(&config, style, sample_rate, tester_pins);
        t.row_owned(vec![
            style.to_string(),
            style.pins_per_converter(6).to_string(),
            cost.parallel_converters.to_string(),
            format!("{:.2e}", cost.seconds_per_converter),
            cost.tester_bits_per_converter.to_string(),
        ]);
        csv.push(vec![
            style.to_string(),
            style.pins_per_converter(6).to_string(),
            cost.parallel_converters.to_string(),
            cost.seconds_per_converter.to_string(),
            cost.tester_bits_per_converter.to_string(),
        ]);
    }
    println!("{t}");
    let conv = plan_cost(&config, TestStyle::Conventional, sample_rate, tester_pins);
    let full = plan_cost(&config, TestStyle::FullBist, sample_rate, tester_pins);
    println!(
        "speedup full BIST vs conventional on a {}-pin tester: {:.1}× less tester time,",
        tester_pins,
        conv.seconds_per_converter / full.seconds_per_converter
    );
    println!(
        "{}× less tester data — and the capture channels need no deep memory at all.",
        conv.tester_bits_per_converter / full.tester_bits_per_converter
    );
    let path = sc.csv(
        "test_economics.csv",
        &[
            "style",
            "pins",
            "parallel",
            "s_per_converter",
            "tester_bits",
        ],
        &csv,
    );
    eprintln!("wrote {}", path.display());
}
