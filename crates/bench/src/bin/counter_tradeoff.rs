//! Experiment E11: the **Figure-1 trade-off** — accuracy of the test vs
//! size (area) of the on-chip test circuitry, swept over counter sizes
//! 3–10.
//!
//! Accuracy comes from the §3 theory at each counter's balanced Δs;
//! area from the gate-equivalent model of the RTL datapath. The paper's
//! conclusion — "with limited hardware usage a BIST solution is
//! possible", a 7-bit counter matching the conventional test — shows up
//! as the knee of this curve.

use bist_adc::spec::LinearitySpec;
use bist_bench::{AsciiPlot, Scenario};
use bist_core::limits::plan_delta_s;
use bist_core::report::Table;
use bist_mc::tables::{analytic_point, JUDGED_CODES};
use bist_rtl::area::{full_bist, LsbProcessorArea};

fn main() {
    Scenario::run("counter_tradeoff", run);
}

fn run(sc: &mut Scenario) {
    let spec = LinearitySpec::paper_stringent();
    let mut t = Table::new(&[
        "counter",
        "Δs [LSB]",
        "type I",
        "type II",
        "LSB-block GE",
        "full BIST GE",
    ])
    .with_title("Figure-1 trade-off: accuracy vs test-circuit area (±0.5 LSB spec)");
    let mut csv = Vec::new();
    let mut curve = Vec::new();
    for bits in 3..=10u32 {
        let ds = plan_delta_s(&spec, bits).0;
        let d = analytic_point(&spec, 0.21, ds, JUDGED_CODES);
        let block = LsbProcessorArea::for_counter_bits(bits).total().0;
        let total = full_bist(6, bits).0;
        t.row_owned(vec![
            bits.to_string(),
            format!("{ds:.5}"),
            format!("{:.4}", d.type_i),
            format!("{:.4}", d.type_ii),
            block.to_string(),
            total.to_string(),
        ]);
        csv.push(vec![
            bits.to_string(),
            ds.to_string(),
            d.type_i.to_string(),
            d.type_ii.to_string(),
            block.to_string(),
            total.to_string(),
        ]);
        curve.push((total as f64, d.type_i));
    }
    println!("{t}");
    let plot = AsciiPlot::new(
        "type I error (log) vs full-BIST area [gate equivalents]",
        90,
        20,
    )
    .log_y()
    .series('x', &curve);
    println!("{}", plot.render());
    println!("reading: each extra counter bit costs a few % area and ~halves type I —");
    println!("the Figure-1 accuracy/size trade-off is strongly in favour of the BIST.");
    let path = sc.csv(
        "counter_tradeoff.csv",
        &[
            "counter_bits",
            "delta_s_lsb",
            "type_i",
            "type_ii",
            "lsb_block_ge",
            "full_bist_ge",
        ],
        &csv,
    );
    eprintln!("wrote {}", path.display());
}
