//! Experiment E14: **sequenced early-stop fleet validation** — the
//! uncertainty-guided sequencer over both verdict backends, scored
//! against full-sweep ground truth.
//!
//! Part 1 runs `bist_mc::differential::run_seq_differential`: for every
//! device × cell (static counter-width × mismatch σ cells plus dynamic
//! resolution × mismatch σ cells), three runs consume bit-identical
//! code streams — the full sweep (ground truth), the sequenced
//! behavioural path and the sequenced gate-accurate RTL path. The two
//! sequenced backends must latch **identical decisions at identical
//! sample indices** (any divergence exits 1, which the CI perf-baseline
//! job relies on), and the sequenced decision is scored against the
//! full sweep for empirical type I/II drift (must stay within the
//! configured `alpha`/`beta` budgets) and samples-to-decision
//! reduction (must reach ≥ 2x on ground-truth-accepted devices).
//! Candidate cells rejected by config validation are reported as
//! skipped and excluded from every figure.
//!
//! Part 2 measures the wall-clock payoff: the same populations screened
//! full-sweep vs sequenced (behavioural backend), reporting devices/s
//! both ways and the speedup — the perf record
//! (`bench/out/seq_fleet.json`) feeds the run-over-run trajectory and
//! the committed `crates/bench/baseline/` gate.
//!
//! Knobs: `BIST_DEVICES` (default 400), `BIST_SEED`, `BIST_WORKERS`,
//! `BIST_SEQ_ALPHA_PPM` / `BIST_SEQ_BETA_PPM` (drift budgets in parts
//! per million, default 1000 = 1e-3), `BIST_SEQ_MIN_SAMPLES` (default
//! 256), `BIST_SEQ_CHECK_INTERVAL` (default 64).

use bist_adc::flash::FlashConfig;
use bist_adc::spec::LinearitySpec;
use bist_adc::types::{Resolution, Volts};
use bist_bench::Scenario;
use bist_core::config::BistConfig;
use bist_core::dynamic::DynamicConfig;
use bist_core::report::Table;
use bist_core::screener::{Screener, Workload};
use bist_core::sequencer::SequencerConfig;
use bist_mc::batch::Batch;
use bist_mc::differential::{run_seq_differential, SeqDifferentialResult};
use bist_mc::experiment::{DynExperiment, DynExperimentResult, Experiment};
use bist_mc::parallel::{partitioned, run_parallel};
use std::time::Instant;

fn main() {
    let mut clean = true;
    Scenario::run("seq_fleet", |sc| clean = run(sc));
    if !clean {
        eprintln!("seq_fleet: sequencer divergence, drift-budget or reduction gate failed");
        std::process::exit(1);
    }
}

fn run(sc: &mut Scenario) -> bool {
    let devices = sc.usize_knob("BIST_DEVICES", 400);
    let seed = sc.seed();
    let workers = sc.workers();
    let alpha = sc.usize_knob("BIST_SEQ_ALPHA_PPM", 1000) as f64 * 1e-6;
    let beta = sc.usize_knob("BIST_SEQ_BETA_PPM", 1000) as f64 * 1e-6;
    let policy = SequencerConfig {
        alpha,
        beta,
        min_samples: sc.usize_knob("BIST_SEQ_MIN_SAMPLES", 256) as u64,
        check_interval: sc.usize_knob("BIST_SEQ_CHECK_INTERVAL", 64) as u64,
    };
    if let Err(e) = policy.validate() {
        eprintln!("seq_fleet: invalid sequencer policy: {e}");
        return false;
    }

    // --- Part 1: the sequenced differential sweep -------------------
    let result = run_seq_differential(seed, &policy, devices, workers);
    println!("sequenced sweep  {result}");
    for cell in &result.skipped_cells {
        println!("skipped cell {}: {}", cell.scenario, cell.reason);
    }

    let mut table = Table::new(&[
        "scenario",
        "compared",
        "latch-exact",
        "early-stop %",
        "samp/dev full",
        "samp/dev seq",
        "reduction",
        "drift I",
        "drift II",
    ])
    .with_title("E14 sequenced differential: early-stop layer over both backends");
    let mut csv = Vec::new();
    for t in &result.per_scenario {
        let n = t.comparisons.max(1);
        table.row_owned(vec![
            t.scenario.to_string(),
            t.comparisons.to_string(),
            t.agreements.to_string(),
            format!("{:.0}", 100.0 * t.early_stops as f64 / n as f64),
            format!("{:.0}", t.full_samples as f64 / n as f64),
            format!("{:.0}", t.seq_samples as f64 / n as f64),
            format!("{:.2}x", t.reduction()),
            t.drift_i.to_string(),
            t.drift_ii.to_string(),
        ]);
        csv.push(vec![
            t.scenario.to_string(),
            t.comparisons.to_string(),
            t.agreements.to_string(),
            t.early_stops.to_string(),
            t.full_samples.to_string(),
            t.seq_samples.to_string(),
            t.drift_i.to_string(),
            t.drift_ii.to_string(),
        ]);
    }
    println!("{table}");
    report_divergences(&result);

    // --- Part 2: wall-clock payoff, full vs sequenced ---------------
    let static_speed = static_throughput(seed, devices, workers, &policy);
    let dyn_speed = dynamic_throughput(seed, devices, workers, &policy);
    println!(
        "throughput static (6-bit counter, σ0.21, {devices} devices): \
         full {:.0} dev/s, sequenced {:.0} dev/s ({:.2}x)",
        static_speed.full_dps,
        static_speed.seq_dps,
        static_speed.seq_dps / static_speed.full_dps.max(1e-9),
    );
    println!(
        "throughput dynamic (6-bit, σ0.16, {devices} devices): \
         full {:.0} dev/s, sequenced {:.0} dev/s ({:.2}x); \
         {} devices of an invalid candidate cell excluded from devices/s",
        dyn_speed.full_dps,
        dyn_speed.seq_dps,
        dyn_speed.seq_dps / dyn_speed.full_dps.max(1e-9),
        dyn_speed.invalid_planned,
    );

    sc.metric_count("devices", devices as u64);
    sc.metric_count("comparisons", result.comparisons);
    sc.metric_count("divergences", result.divergences.len() as u64);
    sc.metric_count("skipped_cells", result.skipped_cells.len() as u64);
    sc.metric_count("invalid_planned", dyn_speed.invalid_planned);
    sc.metric("alpha", policy.alpha);
    sc.metric("beta", policy.beta);
    sc.metric("early_stop_rate", result.early_stop_rate());
    sc.metric("type_i_drift", result.type_i_drift());
    sc.metric("type_ii_drift", result.type_ii_drift());
    sc.metric("reduction_overall", result.reduction_overall());
    sc.metric("reduction_accepted", result.reduction_accepted());
    sc.metric("reduction_rejected", result.reduction_rejected());
    sc.metric("full_static_devices_per_s", static_speed.full_dps);
    sc.metric("seq_static_devices_per_s", static_speed.seq_dps);
    sc.metric("full_dyn_devices_per_s", dyn_speed.full_dps);
    sc.metric("seq_dyn_devices_per_s", dyn_speed.seq_dps);
    let path = sc.csv(
        "seq_fleet.csv",
        &[
            "scenario",
            "compared",
            "latch_exact",
            "early_stops",
            "full_samples",
            "seq_samples",
            "drift_i",
            "drift_ii",
        ],
        &csv,
    );
    eprintln!("wrote {}", path.display());

    // The gates. Empty sweeps must not read as a pass; drift must stay
    // within the configured budgets — compared as event counts with
    // binomial slack (budget·n + 3·√(budget·n)), since the budgets
    // *price* occasional drift and a single in-budget event must not
    // fail a small smoke run; passing devices must on average decide in
    // less than half the full-sweep samples.
    let good: u64 = result.per_scenario.iter().map(|t| t.full_accepted).sum();
    let bad = result.comparisons - good;
    let drift_i: u64 = result.per_scenario.iter().map(|t| t.drift_i).sum();
    let drift_ii: u64 = result.per_scenario.iter().map(|t| t.drift_ii).sum();
    let allow =
        |budget: f64, n: u64| (budget * n as f64 + 3.0 * (budget * n as f64).sqrt()).ceil() as u64;
    let drift_ok = drift_i <= allow(policy.alpha, good) && drift_ii <= allow(policy.beta, bad);
    let reduction_ok = result.reduction_accepted() >= 2.0;
    let clean = result.comparisons > 0 && result.is_clean() && drift_ok && reduction_ok;
    if clean {
        println!("reading: both backends latch the identical early-stop decision on every");
        println!("device, the sequenced verdicts drift from full-sweep ground truth within");
        println!(
            "the configured budgets (I {drift_i}/{good} vs budget {:.0e}, II {drift_ii}/{bad} \
             vs {:.0e}), and passing",
            policy.alpha, policy.beta
        );
        println!(
            "devices decide {:.1}x sooner — the BIST's cheap-verdict promise, now on a",
            result.reduction_accepted()
        );
        println!("per-sample budget instead of a per-sweep one.");
    } else {
        println!(
            "reading: GATE FAILED — divergences {} / drift I {drift_i}/{good} \
             (allow {}) / drift II {drift_ii}/{bad} (allow {}) / \
             reduction on accepted {:.2}x (≥2x?)",
            result.divergences.len(),
            allow(policy.alpha, good),
            allow(policy.beta, bad),
            result.reduction_accepted()
        );
    }
    clean
}

fn report_divergences(result: &SeqDifferentialResult) {
    for d in result.divergences.iter().take(10) {
        println!("DIVERGENCE: {d}");
    }
    if result.divergences.len() > 10 {
        println!("... and {} more", result.divergences.len() - 10);
    }
}

struct Throughput {
    full_dps: f64,
    seq_dps: f64,
    invalid_planned: u64,
}

/// Full-sweep vs sequenced screening over the paper static batch.
fn static_throughput(
    seed: u64,
    devices: usize,
    workers: usize,
    policy: &SequencerConfig,
) -> Throughput {
    let batch = Batch::paper_simulation(seed ^ 0x5ef1, devices);
    let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(6)
        .build()
        .expect("paper operating point");
    let experiment = Experiment::new(batch, config);
    let full = run_parallel(&experiment, workers);

    let start = Instant::now();
    let counts: Vec<u64> = partitioned(batch.size, workers, |from, to| {
        let mut screener = Screener::new(Workload::static_ramp(config)).sequencer(*policy);
        let mut screened = 0u64;
        for i in from..to {
            let tf = batch.device(i);
            let out = screener.screen_one(&tf, &mut batch.device_rng(i ^ 0x5eed_0000_0000_0000));
            screened += 1;
            std::hint::black_box(out.accepted());
        }
        screened
    });
    let seq_elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let screened: u64 = counts.iter().sum();
    Throughput {
        full_dps: full.devices_per_second(),
        seq_dps: screened as f64 / seq_elapsed,
        invalid_planned: 0,
    }
}

/// Full-sweep vs sequenced dynamic screening, including a candidate
/// cell rejected by config validation — its planned devices are merged
/// as `skipped_invalid` and excluded from devices/s (the satellite fix
/// in `bist_mc::experiment` keeps sweeps with and without invalid
/// cells comparable).
fn dynamic_throughput(
    seed: u64,
    devices: usize,
    workers: usize,
    policy: &SequencerConfig,
) -> Throughput {
    let flash =
        FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4)).with_width_sigma_lsb(0.16);
    let mut full = DynExperimentResult::default();
    let mut config_for_seq = None;
    // The sweep grid: the paper cell plus an 8-bit Nyquist-folding
    // candidate the fixed-point register audit rejects.
    for (bits, cycles) in [(6u32, 1021u32), (8, 1024)] {
        let resolution = Resolution::new(bits).expect("valid resolution");
        match DynamicConfig::new(resolution, 4096, cycles) {
            Ok(config) => {
                let config = config.with_overdrive(0.0);
                let high = Volts(0.1 * resolution.code_count() as f64);
                let cell_flash =
                    FlashConfig::new(resolution, Volts(0.0), high).with_width_sigma_lsb(0.16);
                let exp = DynExperiment::new(seed ^ 0xd5ef, devices, cell_flash, config);
                full.merge(&exp.run(workers));
                config_for_seq.get_or_insert(config);
            }
            Err(_) => full.merge(&DynExperimentResult::skipped_invalid(devices as u64)),
        }
    }
    let config = config_for_seq.expect("at least one valid cell");

    let start = Instant::now();
    let counts: Vec<u64> = partitioned(devices, workers, |from, to| {
        let mut screener = Screener::new(Workload::dynamic_sine(config)).sequencer(*policy);
        let mut screened = 0u64;
        for i in from..to {
            let adc = flash.sample(&mut bist_mc::batch::stream_rng(
                seed ^ 0xd5ef,
                &[0, i as u64],
            ));
            let out = screener.screen_one(
                &adc,
                &mut bist_mc::batch::stream_rng(seed ^ 0xd5ef, &[0xd1e_57a7, i as u64]),
            );
            screened += 1;
            std::hint::black_box(out.accepted());
        }
        screened
    });
    let seq_elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let screened: u64 = counts.iter().sum();
    Throughput {
        // One valid cell by construction: devices/s covers exactly the
        // screened devices (the invalid cell's planned devices sit in
        // `full.invalid` and move nothing).
        full_dps: full.devices_per_second(),
        seq_dps: screened as f64 / seq_elapsed,
        invalid_planned: full.invalid,
    }
}
