//! Runs every reproduction binary in sequence (E1–E11) with reduced
//! batch sizes suitable for a quick end-to-end regeneration, capturing
//! each binary's stdout into `bench/out/repro_all.txt` and the
//! per-experiment wall times into `bench/out/repro_all.json`.
//!
//! The children inherit `BIST_WORKERS` (default: all cores), so the
//! whole sweep runs parallel by default. For publication-quality
//! intervals, run the individual binaries with larger `BIST_*` batch
//! knobs instead.

use bist_bench::Scenario;
use std::fs;
use std::io::Write as _;
use std::process::Command;
use std::time::Instant;

const BINS: [&str; 14] = [
    "table1",
    "table2",
    "figure6",
    "figure7",
    "yield30",
    "qmin_table",
    "counter_tradeoff",
    "sigma_sweep",
    "noise_ablation",
    "figure3",
    "test_economics",
    "architectures",
    "resolution_scaling",
    "dynamic_screening",
];
const SLOW_EXTRA: &str = "conventional_equiv";

fn main() {
    // Exit AFTER the scenario completes so a failing experiment still
    // leaves the repro_all.json perf record (with the wall times of the
    // experiments that did succeed) on disk.
    let mut ok = true;
    Scenario::run("repro_all", |sc| ok = run(sc));
    if !ok {
        std::process::exit(1);
    }
}

fn run(sc: &mut Scenario) -> bool {
    let out_path = bist_bench::out_dir().join("repro_all.txt");
    let mut log = fs::File::create(&out_path).expect("create log");
    let quick_env = [
        ("BIST_SIM_BATCH", "1500"),
        ("BIST_MEAS_BATCH", "1500"),
        ("BIST_FAULTY_DEVICES", "1500"),
        ("BIST_MC_BATCH", "1500"),
        ("BIST_BATCH", "6000"),
    ];
    let mut failures = Vec::new();
    for bin in BINS.iter().chain(std::iter::once(&SLOW_EXTRA)) {
        // The equivalence experiment runs 4096-sample histograms per
        // device; trim its batch further.
        let mut cmd = Command::new(
            std::env::current_exe()
                .expect("self path")
                .with_file_name(bin),
        );
        for (k, v) in quick_env {
            cmd.env(k, v);
        }
        if *bin == SLOW_EXTRA {
            cmd.env("BIST_BATCH", "400");
        }
        println!("=== {bin} ===");
        let start = Instant::now();
        match cmd.output() {
            Ok(output) => {
                let secs = start.elapsed().as_secs_f64();
                let stdout = String::from_utf8_lossy(&output.stdout);
                println!("{stdout}");
                println!("--- {bin}: {secs:.2} s");
                writeln!(log, "=== {bin} ===\n{stdout}--- {bin}: {secs:.2} s\n")
                    .expect("write log");
                sc.metric(bin, secs);
                if !output.status.success() {
                    failures.push(bin.to_string());
                    let stderr = String::from_utf8_lossy(&output.stderr);
                    eprintln!("{bin} FAILED:\n{stderr}");
                }
            }
            Err(e) => {
                failures.push(bin.to_string());
                eprintln!("could not launch {bin}: {e} (build with `cargo build -p bist-bench --bins` first)");
            }
        }
    }
    println!("log written to {}", out_path.display());
    if !failures.is_empty() {
        eprintln!("failed experiments: {failures:?}");
        sc.metric_str("failed_experiments", &failures.join(","));
        return false;
    }
    true
}
