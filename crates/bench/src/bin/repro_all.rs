//! Runs every reproduction binary in sequence (E1–E11) with reduced
//! batch sizes suitable for a quick end-to-end regeneration, capturing
//! each binary's stdout into `bench/out/repro_all.txt`.
//!
//! For publication-quality intervals, run the individual binaries with
//! larger `BIST_*` batch knobs instead.

use std::fs;
use std::io::Write as _;
use std::process::Command;

const BINS: [&str; 14] = [
    "table1",
    "table2",
    "figure6",
    "figure7",
    "yield30",
    "qmin_table",
    "counter_tradeoff",
    "sigma_sweep",
    "noise_ablation",
    "figure3",
    "test_economics",
    "architectures",
    "resolution_scaling",
    "dynamic_screening",
];
const SLOW_EXTRA: &str = "conventional_equiv";

fn main() {
    let out_path = bist_bench::out_dir().join("repro_all.txt");
    let mut log = fs::File::create(&out_path).expect("create log");
    let quick_env = [
        ("BIST_SIM_BATCH", "1500"),
        ("BIST_MEAS_BATCH", "1500"),
        ("BIST_FAULTY_DEVICES", "1500"),
        ("BIST_MC_BATCH", "1500"),
        ("BIST_BATCH", "6000"),
    ];
    let mut failures = Vec::new();
    for bin in BINS.iter().chain(std::iter::once(&SLOW_EXTRA)) {
        // The equivalence experiment runs 4096-sample histograms per
        // device; trim its batch further.
        let mut cmd = Command::new(
            std::env::current_exe()
                .expect("self path")
                .with_file_name(bin),
        );
        for (k, v) in quick_env {
            cmd.env(k, v);
        }
        if *bin == SLOW_EXTRA {
            cmd.env("BIST_BATCH", "400");
        }
        println!("=== {bin} ===");
        match cmd.output() {
            Ok(output) => {
                let stdout = String::from_utf8_lossy(&output.stdout);
                println!("{stdout}");
                writeln!(log, "=== {bin} ===\n{stdout}").expect("write log");
                if !output.status.success() {
                    failures.push(bin.to_string());
                    let stderr = String::from_utf8_lossy(&output.stderr);
                    eprintln!("{bin} FAILED:\n{stderr}");
                }
            }
            Err(e) => {
                failures.push(bin.to_string());
                eprintln!("could not launch {bin}: {e} (build with `cargo build -p bist-bench --bins` first)");
            }
        }
    }
    println!("log written to {}", out_path.display());
    if !failures.is_empty() {
        eprintln!("failed experiments: {failures:?}");
        std::process::exit(1);
    }
}
