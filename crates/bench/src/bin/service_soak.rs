//! Experiment E17: **resident-service soak** — the `bist-serve`
//! streaming front door against the one-shot batched pool, on
//! exactness first and throughput second.
//!
//! Part 1 streams a mixed static + dynamic fleet through a resident
//! service at 1 worker and again at 4 workers and demands both runs be
//! bit-identical to `Screener::run` on the same devices with the same
//! per-submission RNG streams. **Any mismatch counts as a divergence
//! and fails the run** (exit 1). A FNV-1a `report_checksum` over the
//! id-sorted verdicts is emitted so two runs at different worker counts
//! can be diffed from their JSON records alone — worker-count
//! determinism as a service invariant, continuously gated.
//!
//! Part 2 times the streaming path (submit interleaved with verdict
//! receipt, ids round-tripping through the rings) against the pooled
//! `Screener::run` floor on the same fleet. Streaming adds queue hops
//! and per-device routing, so it may not beat the batch engine — but it
//! must stay within the ratio floor (default 0.8x,
//! `BIST_SERVE_MIN_RATIO_X` in hundredths) or the run fails.
//!
//! Part 3 floods a deliberately tiny service (4-slot rings, burst 2)
//! and checks the overload contract: `Busy` must actually occur, the
//! sampled queue depth must never exceed the configured capacity, and
//! a drain-and-retry loop must land every verdict exactly once.
//!
//! Part 4 submits a burst and shuts down immediately: the drain report
//! must complete every accepted device, and the final telemetry
//! snapshot must parse through `record_metrics` — the same flat JSON
//! contract `perf_gate` relies on.
//!
//! Knobs: `BIST_DEVICES` (default 600), `BIST_DYN_DEVICES` (default
//! 96), `BIST_LANES` (default 16), `BIST_WORKERS` (default 0 = all
//! cores), `BIST_SERVE_MIN_RATIO_X` (default 80), `BIST_SEED`.

use bist_adc::spec::LinearitySpec;
use bist_adc::types::Resolution;
use bist_bench::{record_metrics, Scenario};
use bist_core::config::BistConfig;
use bist_core::dynamic::DynamicConfig;
use bist_core::pool;
use bist_core::ring::Enqueue;
use bist_core::screener::{Screener, Workload};
use bist_core::shard::JobKind;
use bist_mc::batch::Batch;
use bist_serve::{submission_rng, ServiceConfig, ServiceHandle, Submission};
use std::time::Instant;

const SEED_MIX: u64 = 0x9e37_79b9;

fn main() {
    let mut clean = true;
    Scenario::run("service_soak", |sc| clean = run(sc));
    if !clean {
        eprintln!("service_soak: divergence or service-contract failure — failing the run");
        std::process::exit(1);
    }
}

fn static_workload() -> Workload {
    let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(6)
        .build()
        .expect("paper operating point");
    Workload::static_ramp(config)
}

fn dyn_workload() -> Workload {
    Workload::dynamic_sine(DynamicConfig::paper_default())
}

/// The soak fleet: mismatched six-bit devices, statics first, each
/// submission carrying an id-derived RNG seed.
fn fleet(seed: u64, n_static: usize, n_dyn: usize) -> Vec<Submission> {
    let batch = Batch::paper_simulation(seed, n_static + n_dyn);
    (0..n_static + n_dyn)
        .map(|i| Submission {
            id: i as u64,
            kind: if i < n_static {
                JobKind::Static
            } else {
                JobKind::Dynamic
            },
            adc: batch.device(i),
            seed: seed ^ (i as u64).wrapping_mul(SEED_MIX),
        })
        .collect()
}

/// Reference verdicts by submission id from the one-shot engine, one
/// `Screener::run` per workload group.
fn reference(subs: &[Submission], lanes: usize) -> Vec<(u64, String)> {
    let mut expect = Vec::new();
    for (workload, kind) in [
        (static_workload(), JobKind::Static),
        (dyn_workload(), JobKind::Dynamic),
    ] {
        let group: Vec<&Submission> = subs.iter().filter(|s| s.kind == kind).collect();
        if group.is_empty() {
            continue;
        }
        let reports = Screener::new(workload).lane_width(lanes).run(
            group
                .iter()
                .map(|s| (s.adc.clone(), submission_rng(s.seed))),
        );
        for report in reports {
            expect.push((group[report.device].id, format!("{:?}", report.verdict)));
        }
    }
    expect.sort();
    expect
}

/// Streams the whole fleet through `handle` — submissions interleaved
/// with verdict receipts so a bounded pipeline never deadlocks — and
/// returns the id-sorted verdicts.
fn stream_fleet(handle: &ServiceHandle, subs: &[Submission]) -> Vec<(u64, String)> {
    let mut got = Vec::with_capacity(subs.len());
    for sub in subs {
        let mut pending = sub.clone();
        loop {
            match handle.submit(pending) {
                Enqueue::Accepted => break,
                Enqueue::Busy(back) => {
                    let v = handle.recv_verdict().expect("stream open");
                    got.push((v.id, format!("{:?}", v.verdict)));
                    pending = back;
                }
                Enqueue::Closed(_) => unreachable!("service closed mid-stream"),
            }
        }
        // Opportunistically drain so the verdict ring stays shallow.
        while let Some(v) = handle.try_recv_verdict() {
            got.push((v.id, format!("{:?}", v.verdict)));
        }
    }
    while got.len() < subs.len() {
        let v = handle
            .recv_verdict()
            .expect("stream open while devices in flight");
        got.push((v.id, format!("{:?}", v.verdict)));
    }
    got.sort();
    got
}

fn run(sc: &mut Scenario) -> bool {
    let devices = sc.usize_knob("BIST_DEVICES", 600);
    let dyn_devices = sc.usize_knob("BIST_DYN_DEVICES", 96);
    let lanes = sc.usize_knob("BIST_LANES", 16).max(1);
    let min_ratio = sc.usize_knob("BIST_SERVE_MIN_RATIO_X", 80) as f64 / 100.0;
    let workers = pool::resolve_workers(sc.workers());
    let seed = sc.seed();
    let total = devices + dyn_devices;

    let subs = fleet(seed, devices, dyn_devices);
    let expect = reference(&subs, lanes);

    // --- Part 1: exactness and worker-count determinism -------------
    let mut divergences = 0u64;
    let mut checksums = Vec::new();
    for service_workers in [1usize, 4] {
        let handle = ServiceConfig::new()
            .with_workload(static_workload())
            .with_workload(dyn_workload())
            .with_workers(service_workers)
            .with_lane_width(lanes)
            .start();
        let got = stream_fleet(&handle, &subs);
        let drain = handle.shutdown();
        if drain.telemetry.completed != total as u64 {
            println!(
                "DIVERGENCE: service at {service_workers} workers completed {} of {total}",
                drain.telemetry.completed
            );
            divergences += 1;
        }
        for ((gid, gv), (eid, ev)) in got.iter().zip(&expect) {
            if gid != eid || gv != ev {
                if divergences < 5 {
                    println!(
                        "DIVERGENCE ({service_workers} workers) device {gid}: \
                         streamed {gv} vs Screener::run {ev}"
                    );
                }
                divergences += 1;
            }
        }
        let mut fnv = Fnv::new();
        fnv.fold(&got);
        checksums.push(fnv.finish());
    }
    let deterministic = checksums.windows(2).all(|w| w[0] == w[1]);
    if !deterministic {
        println!("DIVERGENCE: report checksums differ across worker counts: {checksums:x?}");
    }
    println!(
        "exactness: {devices} static + {dyn_devices} dynamic devices streamed at \
         1 and 4 workers → {divergences} divergences, checksum {:#018x}",
        checksums[0]
    );

    // --- Part 2: streaming throughput vs the batched-pool floor -----
    let pooled_rate = throughput(total, || {
        let static_reports = Screener::new(static_workload())
            .lane_width(lanes)
            .workers(workers)
            .run(
                subs[..devices]
                    .iter()
                    .map(|s| (s.adc.clone(), submission_rng(s.seed))),
            );
        let dyn_reports = Screener::new(dyn_workload())
            .lane_width(lanes)
            .workers(workers)
            .run(
                subs[devices..]
                    .iter()
                    .map(|s| (s.adc.clone(), submission_rng(s.seed))),
            );
        std::hint::black_box(static_reports.len() + dyn_reports.len());
    });
    let handle = ServiceConfig::new()
        .with_workload(static_workload())
        .with_workload(dyn_workload())
        .with_workers(workers)
        .with_lane_width(lanes)
        .start();
    let service_rate = throughput(total, || {
        std::hint::black_box(stream_fleet(&handle, &subs).len());
    });
    let uptime_snapshot = handle.telemetry();
    handle.shutdown();
    let ratio = service_rate / pooled_rate.max(1e-9);
    println!(
        "throughput ({total} devices, {workers} workers × {lanes} lanes): \
         pooled {pooled_rate:.0} dev/s, streamed {service_rate:.0} dev/s \
         ({ratio:.2}x, floor {min_ratio:.2}x)"
    );

    // --- Part 3: overload stays bounded, drains without loss --------
    const TINY_CAPACITY: usize = 4;
    let overload = ServiceConfig::new()
        .with_workload(static_workload())
        .with_workers(1)
        .with_burst(2)
        .with_submit_capacity(TINY_CAPACITY)
        .with_verdict_capacity(TINY_CAPACITY)
        .start();
    let flood: Vec<&Submission> = subs[..devices.min(64)].iter().collect();
    let mut busy_responses = 0u64;
    let mut max_depth = 0u64;
    let mut received = Vec::new();
    for &sub in &flood {
        let mut pending = sub.clone();
        loop {
            let depth = overload.telemetry().queue_depth;
            max_depth = max_depth.max(depth);
            match overload.submit(pending) {
                Enqueue::Accepted => break,
                Enqueue::Busy(back) => {
                    busy_responses += 1;
                    let v = overload.recv_verdict().expect("stream open");
                    received.push(v.id);
                    pending = back;
                }
                Enqueue::Closed(_) => unreachable!("service closed mid-flood"),
            }
        }
    }
    while received.len() < flood.len() {
        received.push(overload.recv_verdict().expect("stream open").id);
    }
    received.sort_unstable();
    let no_loss = received == flood.iter().map(|s| s.id).collect::<Vec<_>>();
    let bounded = max_depth <= TINY_CAPACITY as u64;
    overload.shutdown();
    println!(
        "overload: {} devices through {TINY_CAPACITY}-slot rings → {busy_responses} Busy, \
         max sampled depth {max_depth} (bound {TINY_CAPACITY}), loss-free: {no_loss}",
        flood.len()
    );

    // --- Part 4: shutdown drain + telemetry JSON contract -----------
    let drain_service = ServiceConfig::new()
        .with_workload(static_workload())
        .with_workers(2)
        .start();
    const IN_FLIGHT: usize = 32;
    for sub in &subs[..IN_FLIGHT.min(devices)] {
        assert!(drain_service.submit(sub.clone()).is_accepted());
    }
    let drain = drain_service.shutdown();
    let drain_complete = drain.telemetry.completed == IN_FLIGHT.min(devices) as u64;
    let json = drain.telemetry.to_json();
    let parsed = record_metrics(&json);
    let json_ok = ["submitted", "completed", "queue_depth", "devices_per_s"]
        .iter()
        .all(|k| parsed.iter().any(|(key, _)| key == k));
    println!(
        "shutdown: {} in-flight devices drained (complete: {drain_complete}), \
         telemetry JSON exposes {} metrics (contract: {json_ok})",
        IN_FLIGHT.min(devices),
        parsed.len()
    );

    sc.metric_count("divergences", divergences + u64::from(!deterministic));
    sc.metric_count("report_checksum", checksums[0]);
    sc.metric("service_devices_per_s", service_rate);
    sc.metric("pooled_devices_per_s", pooled_rate);
    sc.metric("stream_ratio_x", ratio);
    sc.metric_count("busy_responses", busy_responses);
    sc.metric_count("max_queue_depth", max_depth);
    sc.metric_count("workers", workers as u64);
    sc.metric_count("lane_width", lanes as u64);
    sc.metric("service_uptime_seconds", uptime_snapshot.uptime_seconds);
    let path = sc.csv(
        "service_soak.csv",
        &["path", "devices_per_s", "ratio_x"],
        &[
            vec!["pooled".into(), format!("{pooled_rate:.1}"), "1.000".into()],
            vec![
                "streamed".into(),
                format!("{service_rate:.1}"),
                format!("{ratio:.3}"),
            ],
        ],
    );
    eprintln!("wrote {}", path.display());

    let clean = devices > 0
        && dyn_devices > 0
        && divergences == 0
        && deterministic
        && ratio >= min_ratio
        && busy_responses > 0
        && bounded
        && no_loss
        && drain_complete
        && json_ok;
    if clean {
        println!(
            "reading: the resident service streams bit-identical verdicts at any worker \
             count ({ratio:.2}x the"
        );
        println!(
            "batched-pool floor), answers overload with Busy instead of growth, and \
             completes every"
        );
        println!("accepted device through shutdown — the paper's screen, now a front door.");
    } else {
        println!(
            "reading: GATE FAILED — divergences {divergences}, deterministic {deterministic}, \
             ratio {ratio:.2}x (≥{min_ratio:.2}x?), busy {busy_responses} (>0?), \
             bounded {bounded}, loss-free {no_loss}, drain {drain_complete}, json {json_ok}"
        );
    }
    clean
}

/// FNV-1a folded over the id-sorted `(id, verdict)` pairs — the same
/// order-sensitive fingerprint shape as `batched_fleet`, so two runs at
/// different worker counts can be diffed from their JSON records.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn fold(&mut self, reports: &[(u64, String)]) {
        for (id, verdict) in reports {
            for b in format!("{id}:{verdict};").bytes() {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Devices/s of `pass`: one warm-up, then repeated passes until enough
/// wall-clock accumulates for a stable rate.
fn throughput(devices: usize, mut pass: impl FnMut()) -> f64 {
    pass();
    let start = Instant::now();
    let mut screened = 0usize;
    let mut passes = 0u32;
    loop {
        pass();
        screened += devices;
        passes += 1;
        if (start.elapsed().as_secs_f64() > 0.3 && passes >= 2) || passes >= 64 {
            break;
        }
    }
    screened as f64 / start.elapsed().as_secs_f64().max(1e-9)
}
