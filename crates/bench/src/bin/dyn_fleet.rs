//! Experiment E13: **dynamic differential fleet validation** of the
//! behavioural↔RTL verdict seam, plus the throughput cost of judging
//! the §2 dynamic parameters with fixed-point gates.
//!
//! Part 1 sweeps both dynamic verdict backends — the streaming Goertzel
//! bank and the fixed-point `bist_rtl::DynBistTop` — over the same
//! coherent sine code streams for every device × converter resolution
//! (6/8 bit) × mismatch σ (0 / 0.16 / 0.21 LSB) × coherent-bin choice
//! (1021/997 cycles), demanding **decision-exact agreement**: the
//! per-limit pass/fail bits, sample count and completeness expectation
//! must be identical (the raw dB metrics may differ only by the RTL's
//! bounded fixed-point quantisation). **Any divergence fails the run**
//! (exit 1), which the CI smoke step relies on.
//!
//! Part 2 screens a paper-point population (6-bit, σ = 0.21, 4096
//! samples × 1021 cycles) through each backend end to end and reports
//! devices/s and samples/s, so the dynamic path joins the run-over-run
//! perf trajectory (`bench/out/dyn_fleet.json`).
//!
//! Knobs: `BIST_DEVICES` (default 1000 → 12 000 device×scenario
//! comparisons), `BIST_SEED`, `BIST_WORKERS`.

use bist_adc::flash::FlashConfig;
use bist_adc::noise::NoiseConfig;
use bist_adc::types::{Resolution, Volts};
use bist_bench::Scenario;
use bist_core::backend::RtlBackend;
use bist_core::dynamic::DynamicConfig;
use bist_core::report::Table;
use bist_mc::differential::{run_dyn_differential, DynDifferentialResult};
use bist_mc::experiment::DynExperiment;

fn main() {
    let mut clean = true;
    Scenario::run("dyn_fleet", |sc| clean = run(sc));
    if !clean {
        eprintln!("dyn_fleet: behavioural↔RTL dynamic divergence detected — failing the run");
        std::process::exit(1);
    }
}

fn run(sc: &mut Scenario) -> bool {
    let devices = sc.usize_knob("BIST_DEVICES", 1000);
    let seed = sc.seed();
    let workers = sc.workers();

    // --- Part 1: the dynamic differential sweep ---------------------
    let result = run_dyn_differential(seed, devices, workers);
    println!("dynamic sweep  {result}");

    let mut table = Table::new(&["scenario", "compared", "decision-exact", "accepted"])
        .with_title("E13 differential: Goertzel bank vs fixed-point DynBistTop");
    let mut csv = Vec::new();
    for tally in &result.per_scenario {
        table.row_owned(vec![
            tally.scenario.to_string(),
            tally.comparisons.to_string(),
            tally.agreements.to_string(),
            tally.accepted.to_string(),
        ]);
        csv.push(vec![
            tally.scenario.resolution_bits.to_string(),
            format!("0.{:03}", tally.scenario.sigma_milli_lsb),
            tally.scenario.cycles.to_string(),
            tally.comparisons.to_string(),
            tally.agreements.to_string(),
            tally.accepted.to_string(),
        ]);
    }
    println!("{table}");
    report_divergences(&result);

    // --- Part 2: fleet throughput, backend vs backend ---------------
    let flash =
        FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4)).with_width_sigma_lsb(0.21);
    let experiment = DynExperiment::new(seed, devices, flash, DynamicConfig::paper_default())
        .with_noise(NoiseConfig::noiseless());
    let behavioral = experiment.run(workers);
    let rtl = experiment.run_with(workers, RtlBackend::new);
    let verdicts_agree = behavioral == rtl;
    println!(
        "throughput (6-bit σ0.21, {devices} devices): behavioral {:.0} dev/s ({:.2e} samp/s), \
         rtl {:.0} dev/s ({:.2e} samp/s), gate-accuracy cost {:.1}x; acceptance {:.1}%",
        behavioral.devices_per_second(),
        behavioral.samples_per_second(),
        rtl.devices_per_second(),
        rtl.samples_per_second(),
        behavioral.devices_per_second() / rtl.devices_per_second().max(1e-9),
        100.0 * behavioral.acceptance_rate(),
    );
    if !verdicts_agree {
        println!("throughput phase: screening tallies DIVERGED");
    }

    sc.metric_count("devices", devices as u64);
    sc.metric_count("comparisons", result.comparisons);
    sc.metric_count("divergences", result.divergences.len() as u64);
    sc.metric("agreement_rate", result.agreement_rate());
    sc.metric("acceptance_rate", behavioral.acceptance_rate());
    sc.metric("behavioral_devices_per_s", behavioral.devices_per_second());
    sc.metric("behavioral_samples_per_s", behavioral.samples_per_second());
    sc.metric("rtl_devices_per_s", rtl.devices_per_second());
    sc.metric("rtl_samples_per_s", rtl.samples_per_second());
    let path = sc.csv(
        "dyn_fleet.csv",
        &[
            "resolution_bits",
            "sigma_lsb",
            "cycles",
            "compared",
            "decision_exact",
            "accepted",
        ],
        &csv,
    );
    eprintln!("wrote {}", path.display());
    // An empty sweep must not read as a pass — the smoke gate would go
    // vacuously green on BIST_DEVICES=0.
    let clean = result.comparisons > 0 && result.is_clean() && verdicts_agree;
    if clean {
        println!("reading: the fixed-point dynamic datapath reaches the identical accept/reject");
        println!("decision on every device — §2's THD/noise-power test runs on-chip with \"simple");
        println!("digital functions\" and no loss of verdict fidelity.");
    } else {
        println!("reading: behavioural and RTL dynamic verdicts DIVERGED — see above.");
    }
    clean
}

fn report_divergences(result: &DynDifferentialResult) {
    for d in result.divergences.iter().take(10) {
        println!("DIVERGENCE: {d}");
    }
    if result.divergences.len() > 10 {
        println!("... and {} more", result.divergences.len() - 10);
    }
}
