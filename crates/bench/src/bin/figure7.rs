//! Experiment E5: regenerates **Figure 7** — P(type I) and P(type II) as
//! a function of the step size Δs over the 4-bit-counter region, under
//! the stringent ±0.5 LSB spec.
//!
//! The curves oscillate as the count window [i_min, i_max] snaps across
//! integer boundaries — exactly why the paper warns the error rates are
//! "sensitive to small changes in the step size" and why its measured
//! ramp (Δs off by ~0.002 LSB) doubled the type-I rate. A Monte-Carlo
//! overlay validates the theory at selected points.
//!
//! Knobs: `BIST_MC_BATCH` (devices per MC point, default 3000; 0
//! disables the overlay), `BIST_SEED`, `BIST_WORKERS` (0 = all cores).

use bist_bench::{AsciiPlot, Scenario};
use bist_mc::tables::{figure7, figure7_mc};

fn main() {
    Scenario::run("figure7", run);
}

fn run(sc: &mut Scenario) {
    let pts = figure7(4, 161);
    let mc_batch = sc.usize_knob("BIST_MC_BATCH", 3000);
    let seed = sc.seed();
    let workers = sc.workers();

    let ti: Vec<(f64, f64)> = pts.iter().map(|p| (p.delta_s, p.type_i)).collect();
    let tii: Vec<(f64, f64)> = pts.iter().map(|p| (p.delta_s, p.type_ii)).collect();
    let mut plot = AsciiPlot::new(
        "Figure 7 — P(type I) = I, P(type II) = 2 vs Δs [LSB] (4-bit counter region)",
        100,
        24,
    )
    .series('I', &ti)
    .series('2', &tii);

    let mut mc_rows = Vec::new();
    if mc_batch > 0 {
        let probe: Vec<f64> = [0.0895, 0.0909, 0.0953, 0.1034, 0.1120, 0.125, 0.1395]
            .into_iter()
            .collect();
        let mc = figure7_mc(&probe, mc_batch, seed, workers);
        let mc_ti: Vec<(f64, f64)> = mc
            .iter()
            .filter_map(|(ds, p1, _)| p1.point().map(|p| (*ds, p)))
            .collect();
        plot = plot.series('*', &mc_ti);
        println!("Monte-Carlo overlay ({mc_batch} devices/point): * = type I");
        for (ds, p1, p2) in &mc {
            println!("  Δs {ds:.4}: type I {p1}, type II {p2}");
            mc_rows.push(vec![
                ds.to_string(),
                p1.point().unwrap_or(f64::NAN).to_string(),
                p2.point().unwrap_or(f64::NAN).to_string(),
            ]);
        }
        println!();
    }
    println!("{}", plot.render());

    // Highlight the paper's chosen operating point.
    let near = pts
        .iter()
        .min_by(|a, b| {
            (a.delta_s - 0.091)
                .abs()
                .partial_cmp(&(b.delta_s - 0.091).abs())
                .expect("finite")
        })
        .expect("non-empty sweep");
    println!(
        "paper's operating point Δs≈0.091: window [{}, {}], type I {:.4}, type II {:.4}",
        near.i_min, near.i_max, near.type_i, near.type_ii
    );

    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.delta_s.to_string(),
                p.type_i.to_string(),
                p.type_ii.to_string(),
                p.i_min.to_string(),
                p.i_max.to_string(),
            ]
        })
        .collect();
    let path = sc.csv(
        "figure7.csv",
        &["delta_s_lsb", "type_i", "type_ii", "i_min", "i_max"],
        &rows,
    );
    eprintln!("wrote {}", path.display());
    if !mc_rows.is_empty() {
        let path = sc.csv(
            "figure7_mc.csv",
            &["delta_s_lsb", "mc_type_i", "mc_type_ii"],
            &mc_rows,
        );
        eprintln!("wrote {}", path.display());
    }
}
