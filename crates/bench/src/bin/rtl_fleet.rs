//! Experiment E12: **differential fleet validation** of the
//! behavioural↔RTL verdict seam, plus the throughput cost of judging
//! with real gates.
//!
//! Part 1 sweeps both verdict backends — the production behavioural
//! accumulators and the gate-accurate `bist_rtl::BistTop` — over the
//! same code streams for every device × counter width (4–7) × deglitch
//! × noise point, demanding bit-exact agreement on every verdict field.
//! **Any divergence fails the run** (exit 1), which is what the CI
//! smoke step relies on.
//!
//! Part 2 screens the same batch through each backend end to end and
//! reports devices/s and samples/s, so the RTL path joins the
//! run-over-run perf trajectory (`bench/out/rtl_fleet.json`).
//!
//! Knobs: `BIST_DEVICES` (default 1000), `BIST_SEED`, `BIST_WORKERS`,
//! `BIST_SLOPE_ERROR_MILLI` (magnitude in thousandths, default 22,
//! applied as a *too-steep* — negative — error: the paper's "slightly
//! too steep" measurement ramp as a second sweep).

use bist_adc::noise::NoiseConfig;
use bist_adc::spec::LinearitySpec;
use bist_adc::types::Resolution;
use bist_bench::Scenario;
use bist_core::backend::RtlBackend;
use bist_core::config::BistConfig;
use bist_core::report::Table;
use bist_mc::batch::Batch;
use bist_mc::differential::{run_differential, DifferentialResult};
use bist_mc::experiment::Experiment;
use bist_mc::parallel::{run_parallel, run_parallel_with};

fn main() {
    let mut clean = true;
    Scenario::run("rtl_fleet", |sc| clean = run(sc));
    if !clean {
        eprintln!("rtl_fleet: behavioural↔RTL divergence detected — failing the run");
        std::process::exit(1);
    }
}

fn run(sc: &mut Scenario) -> bool {
    let devices = sc.usize_knob("BIST_DEVICES", 1000);
    let seed = sc.seed();
    let workers = sc.workers();
    // Magnitude knob (the Scenario knob layer is unsigned); the error
    // is applied as a too-steep (negative) ramp like the paper's.
    let slope_milli = sc.usize_knob("BIST_SLOPE_ERROR_MILLI", 22);
    let slope_error = -(slope_milli as f64) / 1000.0;
    let batch = Batch::paper_simulation(seed, devices);

    // --- Part 1: differential sweep, nominal and skewed ramps -------
    let nominal = run_differential(&batch, 0.0, workers);
    let skewed = run_differential(&batch, slope_error, workers);
    println!("nominal ramp   {nominal}");
    println!("skewed ramp    {skewed}");

    let mut table = Table::new(&["scenario", "compared", "bit-exact", "accepted"])
        .with_title("E12 differential: behavioural vs RTL backend, nominal ramp");
    let mut csv = Vec::new();
    for (ramp, result) in [("nominal", &nominal), ("skewed", &skewed)] {
        for tally in &result.per_scenario {
            if ramp == "nominal" {
                table.row_owned(vec![
                    tally.scenario.to_string(),
                    tally.comparisons.to_string(),
                    tally.agreements.to_string(),
                    tally.accepted.to_string(),
                ]);
            }
            csv.push(vec![
                ramp.to_owned(),
                tally.scenario.counter_bits.to_string(),
                u8::from(tally.scenario.deglitch).to_string(),
                tally.scenario.noise.label().to_owned(),
                tally.comparisons.to_string(),
                tally.agreements.to_string(),
                tally.accepted.to_string(),
            ]);
        }
    }
    println!("{table}");
    report_divergences(&nominal, "nominal");
    report_divergences(&skewed, "skewed");

    // --- Part 2: fleet throughput, backend vs backend ---------------
    let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(6)
        .build()
        .expect("paper operating point");
    let experiment = Experiment::new(batch, config).with_noise(NoiseConfig::noiseless());
    let behavioral = run_parallel(&experiment, workers);
    let rtl = run_parallel_with(&experiment, workers, RtlBackend::new);
    let verdicts_agree = behavioral.matrix == rtl.matrix && behavioral.samples == rtl.samples;
    println!(
        "throughput (6-bit counter, {devices} devices): behavioral {:.0} dev/s ({:.2e} samp/s), \
         rtl {:.0} dev/s ({:.2e} samp/s), gate-accuracy cost {:.1}x",
        behavioral.devices_per_second(),
        behavioral.samples_per_second(),
        rtl.devices_per_second(),
        rtl.samples_per_second(),
        behavioral.devices_per_second() / rtl.devices_per_second().max(1e-9),
    );
    if !verdicts_agree {
        println!("throughput phase: confusion matrices DIVERGED");
    }

    sc.metric_count("devices", devices as u64);
    sc.metric_count("comparisons", nominal.comparisons + skewed.comparisons);
    sc.metric_count(
        "divergences",
        (nominal.divergences.len() + skewed.divergences.len()) as u64,
    );
    sc.metric("agreement_rate_nominal", nominal.agreement_rate());
    sc.metric("agreement_rate_skewed", skewed.agreement_rate());
    sc.metric("behavioral_devices_per_s", behavioral.devices_per_second());
    sc.metric("behavioral_samples_per_s", behavioral.samples_per_second());
    sc.metric("rtl_devices_per_s", rtl.devices_per_second());
    sc.metric("rtl_samples_per_s", rtl.samples_per_second());
    let path = sc.csv(
        "rtl_fleet.csv",
        &[
            "ramp",
            "counter_bits",
            "deglitch",
            "noise",
            "compared",
            "bit_exact",
            "accepted",
        ],
        &csv,
    );
    eprintln!("wrote {}", path.display());
    // An empty sweep must not read as a pass — the smoke gate would go
    // vacuously green on BIST_DEVICES=0.
    let clean =
        nominal.comparisons > 0 && nominal.is_clean() && skewed.is_clean() && verdicts_agree;
    if clean {
        println!(
            "reading: the gate-accurate datapath reaches the identical verdict on every device —"
        );
        println!(
            "the on-chip design of Figures 2/4 is a faithful drop-in for the reference model."
        );
    } else {
        println!(
            "reading: behavioural and RTL verdicts DIVERGED — see the DIVERGENCE lines above."
        );
    }
    clean
}

fn report_divergences(result: &DifferentialResult, label: &str) {
    for d in result.divergences.iter().take(10) {
        println!("DIVERGENCE ({label}): {d}");
    }
    if result.divergences.len() > 10 {
        println!("... and {} more ({label})", result.divergences.len() - 10);
    }
}
