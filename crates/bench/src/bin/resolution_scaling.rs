//! Experiment E16: resolution scaling — how the method behaves beyond
//! the paper's 6-bit vehicle.
//!
//! Eq. 9 raises the per-code acceptance to the number of codes
//! `N = 2ⁿ − 2`, so at fixed per-code quality the device-level type-I
//! error grows roughly linearly in `N` while yield collapses — the
//! quantitative reason high-resolution converters need tighter process
//! σ or looser specs. The sweep holds the spec (±0.5 LSB) and counter
//! (7 bits) fixed and varies the resolution.

use bist_adc::spec::LinearitySpec;
use bist_bench::Scenario;
use bist_core::analytic::{code_probabilities, device_probabilities, WidthDistribution};
use bist_core::limits::{plan_delta_s, CountLimits};
use bist_core::report::{fmt_prob, Table};
use bist_core::yield_model::YieldModel;

fn main() {
    Scenario::run("resolution_scaling", run);
}

fn run(sc: &mut Scenario) {
    let spec = LinearitySpec::paper_stringent();
    let dist = WidthDistribution::paper_worst_case();
    let counter_bits = 7;
    let ds = plan_delta_s(&spec, counter_bits).0;
    let limits = CountLimits::from_spec(&spec, ds).expect("planned point");
    let per_code = code_probabilities(&dist, &spec, ds, &limits);

    let mut t = Table::new(&[
        "bits",
        "judged codes",
        "P(device good)",
        "type I",
        "type II",
        "type I / N·p_I",
    ])
    .with_title(
        format!("Resolution scaling at σ = 0.21 LSB, ±0.5 LSB spec, {counter_bits}-bit counter")
            .as_str(),
    );
    let mut csv = Vec::new();
    let p_i_code = per_code.type_i_conditional();
    for bits in 4..=12u32 {
        let codes = (1u64 << bits) - 2;
        let d = device_probabilities(&per_code, codes);
        let model = YieldModel::new(dist, 1 << bits);
        let linear_approx = codes as f64 * p_i_code;
        t.row_owned(vec![
            bits.to_string(),
            codes.to_string(),
            fmt_prob(Some(model.p_device_good(&spec))),
            fmt_prob(Some(d.type_i)),
            fmt_prob(Some(d.type_ii)),
            format!("{:.3}", d.type_i / linear_approx),
        ]);
        csv.push(vec![
            bits.to_string(),
            codes.to_string(),
            model.p_device_good(&spec).to_string(),
            d.type_i.to_string(),
            d.type_ii.to_string(),
        ]);
    }
    println!("{t}");
    println!("reading: the last column shows the binomial linearisation 1−(1−p)^N ≈ N·p");
    println!("holding until N·p approaches 1 — the regime where Eqs. 11–12's binomial");
    println!("treatment matters. At σ = 0.21 a ±0.5 LSB spec is already hopeless above");
    println!("8 bits (yield < 1 %): high-resolution devices need tighter σ, which is why");
    println!("the paper's 6-bit flash with its relaxed ±1 LSB production spec is the");
    println!("sweet spot for the method's accuracy budget.");
    let path = sc.csv(
        "resolution_scaling.csv",
        &["bits", "judged_codes", "p_good", "type_i", "type_ii"],
        &csv,
    );
    eprintln!("wrote {}", path.display());
}
