//! Experiment E4: regenerates **Figure 6** — the Gaussian code-width
//! distribution `f(ΔV)` (6a) and the trapezoidal acceptance probability
//! `h(ΔV, Δs)` (6b) whose product drives the type I/II integrals
//! (Eqs. 6–7).
//!
//! Plotted at the paper's 4-bit operating point (Δs ≈ 0.091 LSB,
//! window [6, 16]) with σ = 0.21 LSB.

use bist_adc::spec::LinearitySpec;
use bist_bench::{AsciiPlot, Scenario};
use bist_core::analytic::{figure6_series, WidthDistribution};
use bist_core::limits::{plan_delta_s, CountLimits};

fn main() {
    Scenario::run("figure6", run);
}

fn run(sc: &mut Scenario) {
    let spec = LinearitySpec::paper_stringent();
    let ds = plan_delta_s(&spec, 4).0;
    let limits = CountLimits::from_spec(&spec, ds).expect("paper operating point");
    let dist = WidthDistribution::paper_worst_case();
    let pts = figure6_series(&dist, ds, &limits, 0.2, 1.9, 171);

    println!("Figure 6 — f(ΔV) [σ=0.21 LSB] and h(ΔV, Δs) at Δs={ds:.4} LSB, window {limits}\n");
    let density: Vec<(f64, f64)> = pts.iter().map(|p| (p.dv, p.density)).collect();
    let accept: Vec<(f64, f64)> = pts
        .iter()
        .map(|p| (p.dv, p.acceptance * dist.pdf(1.0))) // scaled onto the same axis
        .collect();
    let product: Vec<(f64, f64)> = pts.iter().map(|p| (p.dv, p.product)).collect();
    let plot = AsciiPlot::new(
        "f = density (·), h = acceptance scaled (#), h·f = integrand (o); x = ΔV [LSB]",
        96,
        24,
    )
    .series('.', &density)
    .series('#', &accept)
    .series('o', &product);
    println!("{}", plot.render());

    // The hatched areas of Figure 6: type I mass (good ∧ rejected) and
    // type II mass (faulty ∧ accepted).
    let (lo, hi) = spec.width_window_lsb();
    let type_i_mass: f64 = pts
        .windows(2)
        .filter(|w| w[0].dv >= lo.0 && w[1].dv <= hi.0)
        .map(|w| {
            let f_minus_hf = |p: &bist_core::analytic::Figure6Point| p.density - p.product;
            0.5 * (f_minus_hf(&w[0]) + f_minus_hf(&w[1])) * (w[1].dv - w[0].dv)
        })
        .sum();
    let type_ii_mass: f64 = pts
        .windows(2)
        .filter(|w| w[1].dv <= lo.0 || w[0].dv >= hi.0)
        .map(|w| 0.5 * (w[0].product + w[1].product) * (w[1].dv - w[0].dv))
        .sum();
    println!("hatched areas (per-code joint masses):");
    println!("  type I  ∫(1-h)·f over good widths  ≈ {type_i_mass:.5}");
    println!("  type II ∫h·f over faulty widths    ≈ {type_ii_mass:.5}");

    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.dv.to_string(),
                p.density.to_string(),
                p.acceptance.to_string(),
                p.product.to_string(),
            ]
        })
        .collect();
    let path = sc.csv(
        "figure6.csv",
        &["dv_lsb", "density", "acceptance", "product"],
        &rows,
    );
    eprintln!("wrote {}", path.display());
}
