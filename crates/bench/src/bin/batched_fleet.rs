//! Experiment E16: **batched fleet screening** — the lane-parallel
//! structure-of-arrays engine (`bist_core::batch` behind
//! `Screener::run`) against the scalar one-device-at-a-time engine
//! (`Screener::screen_one`), on exactness first and throughput second.
//!
//! Part 1 screens identical populations (same devices, same per-device
//! RNG streams) through both engines in all four modes — static and
//! dynamic, plain and early-stop sequenced — and demands bit-exact
//! report equality. **Any mismatch counts as a divergence and fails the
//! run** (exit 1), which the CI perf-baseline smoke relies on.
//!
//! Part 2 times both engines and reports devices/s each way. The run
//! fails when the batched engine's speedup falls below the floors the
//! lane refactor promises: ≥ 4x on the static (run-skipping) workload
//! and ≥ 2x on the dynamic (shared-stimulus) workload
//! (`BIST_BATCHED_MIN_STATIC_X` / `BIST_BATCHED_MIN_DYN_X` override,
//! in hundredths via the integer knob layer). The committed
//! `crates/bench/baseline/batched_fleet.json` additionally gates the
//! absolute devices/s numbers through `perf_gate`.
//!
//! Knobs: `BIST_DEVICES` (default 600), `BIST_DYN_DEVICES` (default
//! 96), `BIST_LANES` (default 16), `BIST_SEED`.

use bist_adc::flash::{FlashAdc, FlashConfig};
use bist_adc::spec::LinearitySpec;
use bist_adc::transfer::TransferFunction;
use bist_adc::types::{Resolution, Volts};
use bist_bench::Scenario;
use bist_core::config::BistConfig;
use bist_core::dynamic::DynamicConfig;
use bist_core::screener::{ScreenVerdict, Screener, Workload};
use bist_core::sequencer::SequencerConfig;
use bist_mc::batch::{stream_rng, Batch};
use std::time::Instant;

/// Device RNG salt shared with the static fleet experiments.
const STATIC_SALT: usize = 0x5eed_0000_0000_0000;
const DYN_SEED_XOR: u64 = 0xba7c;

fn main() {
    let mut clean = true;
    Scenario::run("batched_fleet", |sc| clean = run(sc));
    if !clean {
        eprintln!("batched_fleet: divergence or speedup floor failure — failing the run");
        std::process::exit(1);
    }
}

fn run(sc: &mut Scenario) -> bool {
    let devices = sc.usize_knob("BIST_DEVICES", 600);
    let dyn_devices = sc.usize_knob("BIST_DYN_DEVICES", 96);
    let lanes = sc.usize_knob("BIST_LANES", 16);
    let min_static_x = sc.usize_knob("BIST_BATCHED_MIN_STATIC_X", 400) as f64 / 100.0;
    let min_dyn_x = sc.usize_knob("BIST_BATCHED_MIN_DYN_X", 200) as f64 / 100.0;
    let seed = sc.seed();

    let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(6)
        .build()
        .expect("paper operating point");
    let dyn_config = DynamicConfig::paper_default();
    let policy = SequencerConfig::default();

    // The populations, generated once; both engines screen references
    // to the same devices with identical per-device RNG streams.
    let batch = Batch::paper_simulation(seed, devices);
    let fleet: Vec<TransferFunction> = (0..devices).map(|i| batch.device(i)).collect();
    let static_rng = |i: usize| batch.device_rng(i ^ STATIC_SALT);
    let flash =
        FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4)).with_width_sigma_lsb(0.21);
    let dyn_fleet: Vec<FlashAdc> = (0..dyn_devices)
        .map(|i| flash.sample(&mut stream_rng(seed ^ DYN_SEED_XOR, &[0, i as u64])))
        .collect();
    let dyn_rng = |i: usize| stream_rng(seed ^ DYN_SEED_XOR, &[1, i as u64]);

    // --- Part 1: exactness, all four modes --------------------------
    let mut divergences = 0u64;
    for sequenced in [false, true] {
        let w = Workload::static_ramp(config);
        let mut scalar = Screener::new(w);
        let mut batched = Screener::new(w).lane_width(lanes);
        if sequenced {
            scalar = scalar.sequencer(policy);
            batched = batched.sequencer(policy);
        }
        let reports = batched.run(fleet.iter().enumerate().map(|(i, tf)| (tf, static_rng(i))));
        divergences += compare(
            &reports
                .iter()
                .map(|r| (r.device, r.verdict))
                .collect::<Vec<_>>(),
            |i| scalar.screen_one(&fleet[i], &mut static_rng(i)),
            if sequenced { "static seq" } else { "static" },
        );
    }
    for sequenced in [false, true] {
        let w = Workload::dynamic_sine(dyn_config);
        let mut scalar = Screener::new(w);
        let mut batched = Screener::new(w).lane_width(lanes);
        if sequenced {
            scalar = scalar.sequencer(policy);
            batched = batched.sequencer(policy);
        }
        let reports = batched.run(
            dyn_fleet
                .iter()
                .enumerate()
                .map(|(i, adc)| (adc, dyn_rng(i))),
        );
        divergences += compare(
            &reports
                .iter()
                .map(|r| (r.device, r.verdict))
                .collect::<Vec<_>>(),
            |i| scalar.screen_one(&dyn_fleet[i], &mut dyn_rng(i)),
            if sequenced { "dynamic seq" } else { "dynamic" },
        );
    }
    println!(
        "exactness: {} static + {} dynamic devices × (plain, sequenced) × \
         (scalar, batched {lanes}-lane) → {divergences} divergences",
        devices, dyn_devices
    );

    // --- Part 2: throughput, scalar vs batched ----------------------
    let scalar_static = throughput(devices, || {
        let mut s = Screener::new(Workload::static_ramp(config));
        for (i, tf) in fleet.iter().enumerate() {
            std::hint::black_box(s.screen_one(tf, &mut static_rng(i)).accepted());
        }
    });
    let batched_static = throughput(devices, || {
        let mut s = Screener::new(Workload::static_ramp(config)).lane_width(lanes);
        let reports = s.run(fleet.iter().enumerate().map(|(i, tf)| (tf, static_rng(i))));
        std::hint::black_box(reports.len());
    });
    let scalar_dyn = throughput(dyn_devices, || {
        let mut s = Screener::new(Workload::dynamic_sine(dyn_config));
        for (i, adc) in dyn_fleet.iter().enumerate() {
            std::hint::black_box(s.screen_one(adc, &mut dyn_rng(i)).accepted());
        }
    });
    let batched_dyn = throughput(dyn_devices, || {
        let mut s = Screener::new(Workload::dynamic_sine(dyn_config)).lane_width(lanes);
        let reports = s.run(
            dyn_fleet
                .iter()
                .enumerate()
                .map(|(i, adc)| (adc, dyn_rng(i))),
        );
        std::hint::black_box(reports.len());
    });
    let static_x = batched_static / scalar_static.max(1e-9);
    let dyn_x = batched_dyn / scalar_dyn.max(1e-9);
    println!(
        "throughput static ({devices} devices): scalar {scalar_static:.0} dev/s, \
         batched {batched_static:.0} dev/s ({static_x:.2}x, floor {min_static_x:.2}x)"
    );
    println!(
        "throughput dynamic ({dyn_devices} devices): scalar {scalar_dyn:.0} dev/s, \
         batched {batched_dyn:.0} dev/s ({dyn_x:.2}x, floor {min_dyn_x:.2}x)"
    );

    sc.metric_count("divergences", divergences);
    sc.metric("scalar_static_devices_per_s", scalar_static);
    sc.metric("batched_static_devices_per_s", batched_static);
    sc.metric("scalar_dyn_devices_per_s", scalar_dyn);
    sc.metric("batched_dyn_devices_per_s", batched_dyn);
    sc.metric("static_speedup_x", static_x);
    sc.metric("dyn_speedup_x", dyn_x);
    let path = sc.csv(
        "batched_fleet.csv",
        &[
            "workload",
            "scalar_devices_per_s",
            "batched_devices_per_s",
            "speedup_x",
        ],
        &[
            vec![
                "static".into(),
                format!("{scalar_static:.1}"),
                format!("{batched_static:.1}"),
                format!("{static_x:.3}"),
            ],
            vec![
                "dynamic".into(),
                format!("{scalar_dyn:.1}"),
                format!("{batched_dyn:.1}"),
                format!("{dyn_x:.3}"),
            ],
        ],
    );
    eprintln!("wrote {}", path.display());

    let clean = devices > 0
        && dyn_devices > 0
        && divergences == 0
        && static_x >= min_static_x
        && dyn_x >= min_dyn_x;
    if clean {
        println!("reading: the lane-parallel engine reports bit-identical verdicts and screens");
        println!(
            "{static_x:.1}x more static / {dyn_x:.1}x more dynamic devices per second — \
             lockstep lanes, run-skip"
        );
        println!("and the shared stimulus table pay for the refactor.");
    } else {
        println!(
            "reading: GATE FAILED — divergences {divergences}, static {static_x:.2}x \
             (≥{min_static_x:.2}x?), dynamic {dyn_x:.2}x (≥{min_dyn_x:.2}x?)"
        );
    }
    clean
}

/// Compares batched reports against the scalar engine re-screening the
/// same device, returning the mismatch count.
fn compare<F>(batched: &[(usize, ScreenVerdict)], mut scalar: F, label: &str) -> u64
where
    F: FnMut(usize) -> ScreenVerdict,
{
    let mut mismatches = 0u64;
    for &(device, verdict) in batched {
        let reference = scalar(device);
        if verdict != reference {
            if mismatches < 5 {
                println!(
                    "DIVERGENCE ({label}) device {device}: batched {verdict:?} \
                     vs scalar {reference:?}"
                );
            }
            mismatches += 1;
        }
    }
    mismatches
}

/// Devices/s of `pass` (which screens `devices` devices): one warm-up
/// pass, then repeated passes until enough wall-clock accumulates for a
/// stable rate.
fn throughput(devices: usize, mut pass: impl FnMut()) -> f64 {
    pass();
    let start = Instant::now();
    let mut screened = 0usize;
    let mut passes = 0u32;
    loop {
        pass();
        screened += devices;
        passes += 1;
        if (start.elapsed().as_secs_f64() > 0.3 && passes >= 2) || passes >= 64 {
            break;
        }
    }
    screened as f64 / start.elapsed().as_secs_f64().max(1e-9)
}
