//! Experiment E16: **batched fleet screening** — the lane-parallel
//! structure-of-arrays engine (`bist_core::batch` behind
//! `Screener::run`) against the scalar one-device-at-a-time engine
//! (`Screener::screen_one`), on exactness first and throughput second.
//!
//! Part 1 screens identical populations (same devices, same per-device
//! RNG streams) through both engines in all four modes — static and
//! dynamic, plain and early-stop sequenced — and demands bit-exact
//! report equality. **Any mismatch counts as a divergence and fails the
//! run** (exit 1), which the CI perf-baseline smoke relies on.
//!
//! Part 1b shards the same populations across the work-stealing worker
//! pool (`Screener::workers`) at several worker counts and chunk sizes
//! and demands the pooled reports stay bit-identical to the batched
//! ones — the cores axis must be invisible in the output. A FNV-1a
//! checksum over every report is emitted as `report_checksum`, so two
//! runs at different `BIST_WORKERS` can be diffed from their JSON
//! records alone (the CI perf-baseline job does exactly that).
//!
//! Part 2 times the engines and reports devices/s each way: scalar vs
//! batched (one core), plus the pooled engine at the configured worker
//! count. The run fails when the batched engine's speedup falls below
//! the floors the lane refactor promises: ≥ 4x on the static
//! (run-skipping) workload and ≥ 2x on the dynamic (shared-stimulus)
//! workload (`BIST_BATCHED_MIN_STATIC_X` / `BIST_BATCHED_MIN_DYN_X`
//! override, in hundredths via the integer knob layer). When the host
//! actually has the cores to back the configured pool (≥ 4 workers, all
//! resident), the pooled static throughput must additionally clear
//! `BIST_POOL_MIN_STATIC_X` (default 3x) over the single-worker batched
//! rate — informational on smaller hosts, a hard gate on multi-core CI.
//! The committed `crates/bench/baseline/batched_fleet.json` additionally
//! gates the absolute devices/s numbers through `perf_gate`.
//!
//! Knobs: `BIST_DEVICES` (default 600), `BIST_DYN_DEVICES` (default
//! 96), `BIST_LANES` (default 16), `BIST_WORKERS` (default 0 = all
//! cores), `BIST_POOL_CHUNK` (default `pool::DEFAULT_CHUNK`),
//! `BIST_SEED`.

use bist_adc::flash::{FlashAdc, FlashConfig};
use bist_adc::spec::LinearitySpec;
use bist_adc::transfer::TransferFunction;
use bist_adc::types::{Resolution, Volts};
use bist_bench::Scenario;
use bist_core::config::BistConfig;
use bist_core::dynamic::DynamicConfig;
use bist_core::pool;
use bist_core::screener::{ScreenVerdict, Screener, Workload};
use bist_core::sequencer::SequencerConfig;
use bist_mc::batch::{stream_rng, Batch};
use std::time::Instant;

/// Device RNG salt shared with the static fleet experiments.
const STATIC_SALT: usize = 0x5eed_0000_0000_0000;
const DYN_SEED_XOR: u64 = 0xba7c;

fn main() {
    let mut clean = true;
    Scenario::run("batched_fleet", |sc| clean = run(sc));
    if !clean {
        eprintln!("batched_fleet: divergence or speedup floor failure — failing the run");
        std::process::exit(1);
    }
}

fn run(sc: &mut Scenario) -> bool {
    let devices = sc.usize_knob("BIST_DEVICES", 600);
    let dyn_devices = sc.usize_knob("BIST_DYN_DEVICES", 96);
    let lanes = sc.usize_knob("BIST_LANES", 16);
    let min_static_x = sc.usize_knob("BIST_BATCHED_MIN_STATIC_X", 400) as f64 / 100.0;
    let min_dyn_x = sc.usize_knob("BIST_BATCHED_MIN_DYN_X", 200) as f64 / 100.0;
    let min_pool_static_x = sc.usize_knob("BIST_POOL_MIN_STATIC_X", 300) as f64 / 100.0;
    let workers = pool::resolve_workers(sc.workers());
    let chunk = sc.usize_knob("BIST_POOL_CHUNK", pool::DEFAULT_CHUNK).max(1);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let seed = sc.seed();

    let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(6)
        .build()
        .expect("paper operating point");
    let dyn_config = DynamicConfig::paper_default();
    let policy = SequencerConfig::default();

    // The populations, generated once; both engines screen references
    // to the same devices with identical per-device RNG streams.
    let batch = Batch::paper_simulation(seed, devices);
    let fleet: Vec<TransferFunction> = (0..devices).map(|i| batch.device(i)).collect();
    let static_rng = |i: usize| batch.device_rng(i ^ STATIC_SALT);
    let flash =
        FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4)).with_width_sigma_lsb(0.21);
    let dyn_fleet: Vec<FlashAdc> = (0..dyn_devices)
        .map(|i| flash.sample(&mut stream_rng(seed ^ DYN_SEED_XOR, &[0, i as u64])))
        .collect();
    let dyn_rng = |i: usize| stream_rng(seed ^ DYN_SEED_XOR, &[1, i as u64]);

    // --- Part 1: exactness, all four modes, lanes then cores --------
    // Pooled runs are compared at several worker counts × chunk sizes;
    // the checksum folds every batched report so two JSON records can
    // be diffed for divergence without rerunning.
    const POOL_GRID: [(usize, usize); 4] = [(1, 5), (2, 8), (4, 32), (16, 3)];
    let mut divergences = 0u64;
    let mut checksum = Fnv::new();
    for sequenced in [false, true] {
        let w = Workload::static_ramp(config);
        let mut scalar = Screener::new(w);
        let mut batched = Screener::new(w).lane_width(lanes);
        if sequenced {
            scalar = scalar.sequencer(policy);
            batched = batched.sequencer(policy);
        }
        let label = if sequenced { "static seq" } else { "static" };
        let reports: Vec<_> = batched
            .run(fleet.iter().enumerate().map(|(i, tf)| (tf, static_rng(i))))
            .into_iter()
            .map(|r| (r.device, r.verdict))
            .collect();
        divergences += compare(
            &reports,
            |i| scalar.screen_one(&fleet[i], &mut static_rng(i)),
            label,
        );
        checksum.fold(&reports);
        for (pool_workers, pool_chunk) in POOL_GRID {
            let mut pooled = Screener::new(w)
                .lane_width(lanes)
                .workers(pool_workers)
                .chunk_size(pool_chunk);
            if sequenced {
                pooled = pooled.sequencer(policy);
            }
            let pooled_reports: Vec<_> = pooled
                .run(fleet.iter().enumerate().map(|(i, tf)| (tf, static_rng(i))))
                .into_iter()
                .map(|r| (r.device, r.verdict))
                .collect();
            if pooled_reports != reports {
                println!(
                    "DIVERGENCE ({label}) pooled workers={pool_workers} chunk={pool_chunk} \
                     differs from batched"
                );
                divergences += 1;
            }
        }
    }
    for sequenced in [false, true] {
        let w = Workload::dynamic_sine(dyn_config);
        let mut scalar = Screener::new(w);
        let mut batched = Screener::new(w).lane_width(lanes);
        if sequenced {
            scalar = scalar.sequencer(policy);
            batched = batched.sequencer(policy);
        }
        let label = if sequenced { "dynamic seq" } else { "dynamic" };
        let reports: Vec<_> = batched
            .run(
                dyn_fleet
                    .iter()
                    .enumerate()
                    .map(|(i, adc)| (adc, dyn_rng(i))),
            )
            .into_iter()
            .map(|r| (r.device, r.verdict))
            .collect();
        divergences += compare(
            &reports,
            |i| scalar.screen_one(&dyn_fleet[i], &mut dyn_rng(i)),
            label,
        );
        checksum.fold(&reports);
        for (pool_workers, pool_chunk) in POOL_GRID {
            let mut pooled = Screener::new(w)
                .lane_width(lanes)
                .workers(pool_workers)
                .chunk_size(pool_chunk);
            if sequenced {
                pooled = pooled.sequencer(policy);
            }
            let pooled_reports: Vec<_> = pooled
                .run(
                    dyn_fleet
                        .iter()
                        .enumerate()
                        .map(|(i, adc)| (adc, dyn_rng(i))),
                )
                .into_iter()
                .map(|r| (r.device, r.verdict))
                .collect();
            if pooled_reports != reports {
                println!(
                    "DIVERGENCE ({label}) pooled workers={pool_workers} chunk={pool_chunk} \
                     differs from batched"
                );
                divergences += 1;
            }
        }
    }
    println!(
        "exactness: {} static + {} dynamic devices × (plain, sequenced) × \
         (scalar, batched {lanes}-lane, pooled {:?} workers×chunk) → {divergences} divergences",
        devices, dyn_devices, POOL_GRID
    );

    // --- Part 2: throughput, scalar vs batched ----------------------
    let scalar_static = throughput(devices, || {
        let mut s = Screener::new(Workload::static_ramp(config));
        for (i, tf) in fleet.iter().enumerate() {
            std::hint::black_box(s.screen_one(tf, &mut static_rng(i)).accepted());
        }
    });
    let batched_static = throughput(devices, || {
        let mut s = Screener::new(Workload::static_ramp(config)).lane_width(lanes);
        let reports = s.run(fleet.iter().enumerate().map(|(i, tf)| (tf, static_rng(i))));
        std::hint::black_box(reports.len());
    });
    let scalar_dyn = throughput(dyn_devices, || {
        let mut s = Screener::new(Workload::dynamic_sine(dyn_config));
        for (i, adc) in dyn_fleet.iter().enumerate() {
            std::hint::black_box(s.screen_one(adc, &mut dyn_rng(i)).accepted());
        }
    });
    let batched_dyn = throughput(dyn_devices, || {
        let mut s = Screener::new(Workload::dynamic_sine(dyn_config)).lane_width(lanes);
        let reports = s.run(
            dyn_fleet
                .iter()
                .enumerate()
                .map(|(i, adc)| (adc, dyn_rng(i))),
        );
        std::hint::black_box(reports.len());
    });
    let pooled_static = throughput(devices, || {
        let mut s = Screener::new(Workload::static_ramp(config))
            .lane_width(lanes)
            .workers(workers)
            .chunk_size(chunk);
        let reports = s.run(fleet.iter().enumerate().map(|(i, tf)| (tf, static_rng(i))));
        std::hint::black_box(reports.len());
    });
    let pooled_dyn = throughput(dyn_devices, || {
        let mut s = Screener::new(Workload::dynamic_sine(dyn_config))
            .lane_width(lanes)
            .workers(workers)
            .chunk_size(chunk);
        let reports = s.run(
            dyn_fleet
                .iter()
                .enumerate()
                .map(|(i, adc)| (adc, dyn_rng(i))),
        );
        std::hint::black_box(reports.len());
    });
    let static_x = batched_static / scalar_static.max(1e-9);
    let dyn_x = batched_dyn / scalar_dyn.max(1e-9);
    let pooled_static_x = pooled_static / batched_static.max(1e-9);
    // The multiplicative pool floor only binds where it is physically
    // meaningful: a ≥4-worker pool whose workers all have a core to
    // run on. Elsewhere (this includes single-core CI shards) the
    // pooled numbers are recorded but informational.
    let pool_gate_live = workers >= 4 && host_cores >= workers;
    println!(
        "throughput static ({devices} devices): scalar {scalar_static:.0} dev/s, \
         batched {batched_static:.0} dev/s ({static_x:.2}x, floor {min_static_x:.2}x)"
    );
    println!(
        "throughput dynamic ({dyn_devices} devices): scalar {scalar_dyn:.0} dev/s, \
         batched {batched_dyn:.0} dev/s ({dyn_x:.2}x, floor {min_dyn_x:.2}x)"
    );
    println!(
        "throughput pooled ({workers} workers × {lanes} lanes, chunk {chunk}, \
         {host_cores} host cores): static {pooled_static:.0} dev/s \
         ({pooled_static_x:.2}x batched, floor {min_pool_static_x:.2}x {}), \
         dynamic {pooled_dyn:.0} dev/s",
        if pool_gate_live {
            "LIVE"
        } else {
            "informational"
        }
    );

    sc.metric_count("divergences", divergences);
    sc.metric("scalar_static_devices_per_s", scalar_static);
    sc.metric("batched_static_devices_per_s", batched_static);
    sc.metric("scalar_dyn_devices_per_s", scalar_dyn);
    sc.metric("batched_dyn_devices_per_s", batched_dyn);
    sc.metric("pooled_static_devices_per_s", pooled_static);
    sc.metric("pooled_dyn_devices_per_s", pooled_dyn);
    sc.metric(
        "per_worker_static_devices_per_s",
        pooled_static / workers as f64,
    );
    sc.metric("static_speedup_x", static_x);
    sc.metric("dyn_speedup_x", dyn_x);
    sc.metric("pooled_static_x", pooled_static_x);
    sc.metric_count("workers", workers as u64);
    sc.metric_count("lane_width", lanes as u64);
    sc.metric_count("host_cores", host_cores as u64);
    sc.metric_count("report_checksum", checksum.finish());
    let path = sc.csv(
        "batched_fleet.csv",
        &[
            "workload",
            "scalar_devices_per_s",
            "batched_devices_per_s",
            "speedup_x",
        ],
        &[
            vec![
                "static".into(),
                format!("{scalar_static:.1}"),
                format!("{batched_static:.1}"),
                format!("{static_x:.3}"),
            ],
            vec![
                "dynamic".into(),
                format!("{scalar_dyn:.1}"),
                format!("{batched_dyn:.1}"),
                format!("{dyn_x:.3}"),
            ],
            vec![
                format!("static pooled x{workers}"),
                format!("{batched_static:.1}"),
                format!("{pooled_static:.1}"),
                format!("{pooled_static_x:.3}"),
            ],
            vec![
                format!("dynamic pooled x{workers}"),
                format!("{batched_dyn:.1}"),
                format!("{pooled_dyn:.1}"),
                format!("{:.3}", pooled_dyn / batched_dyn.max(1e-9)),
            ],
        ],
    );
    eprintln!("wrote {}", path.display());

    let clean = devices > 0
        && dyn_devices > 0
        && divergences == 0
        && static_x >= min_static_x
        && dyn_x >= min_dyn_x
        && (!pool_gate_live || pooled_static_x >= min_pool_static_x);
    if clean {
        println!("reading: the lane-parallel engine reports bit-identical verdicts for any");
        println!(
            "workers × lanes × chunk and screens {static_x:.1}x more static / {dyn_x:.1}x \
             more dynamic devices"
        );
        println!(
            "per second on one core ({pooled_static_x:.1}x again across {workers} workers) — \
             lockstep lanes,"
        );
        println!("run-skip, the shared stimulus table and the worker pool pay for the refactor.");
    } else {
        println!(
            "reading: GATE FAILED — divergences {divergences}, static {static_x:.2}x \
             (≥{min_static_x:.2}x?), dynamic {dyn_x:.2}x (≥{min_dyn_x:.2}x?), \
             pooled {pooled_static_x:.2}x (≥{min_pool_static_x:.2}x if live: {pool_gate_live})"
        );
    }
    clean
}

/// FNV-1a folded over the debug form of every `(device, verdict)` pair
/// — a cheap, order-sensitive fleet fingerprint two runs can diff.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn fold(&mut self, reports: &[(usize, ScreenVerdict)]) {
        for (device, verdict) in reports {
            for b in format!("{device}:{verdict:?};").bytes() {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Compares batched reports against the scalar engine re-screening the
/// same device, returning the mismatch count.
fn compare<F>(batched: &[(usize, ScreenVerdict)], mut scalar: F, label: &str) -> u64
where
    F: FnMut(usize) -> ScreenVerdict,
{
    let mut mismatches = 0u64;
    for &(device, verdict) in batched {
        let reference = scalar(device);
        if verdict != reference {
            if mismatches < 5 {
                println!(
                    "DIVERGENCE ({label}) device {device}: batched {verdict:?} \
                     vs scalar {reference:?}"
                );
            }
            mismatches += 1;
        }
    }
    mismatches
}

/// Devices/s of `pass` (which screens `devices` devices): one warm-up
/// pass, then repeated passes until enough wall-clock accumulates for a
/// stable rate.
fn throughput(devices: usize, mut pass: impl FnMut()) -> f64 {
    pass();
    let start = Instant::now();
    let mut screened = 0usize;
    let mut passes = 0u32;
    loop {
        pass();
        screened += devices;
        passes += 1;
        if (start.elapsed().as_secs_f64() > 0.3 && passes >= 2) || passes >= 64 {
            break;
        }
    }
    screened as f64 / start.elapsed().as_secs_f64().max(1e-9)
}
