//! Experiment E15: architecture-agnosticism — the BIST only watches
//! output bits, so the same configuration must screen flash, SAR and
//! pipeline converters, each with its own mismatch signature.
//!
//! For each architecture a 600-device population is tuned so that
//! roughly half the devices violate the ±0.5 LSB spec, then screened by
//! the 6-bit-counter BIST against exact ground truth.
//!
//! Knobs: `BIST_BATCH` (default 600), `BIST_SEED`. (Runs
//! sequentially by design: each population draws devices from one
//! shared RNG stream.)

use bist_adc::flash::FlashConfig;
use bist_adc::pipeline::PipelineConfig;
use bist_adc::sar::SarConfig;
use bist_adc::spec::LinearitySpec;
use bist_adc::transfer::{Adc, TransferFunction};
use bist_adc::types::{Resolution, Volts};
use bist_bench::Scenario;
use bist_core::config::BistConfig;
use bist_core::decision::ConfusionMatrix;
use bist_core::report::{fmt_prob, Table};
use bist_core::screener::{Screener, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn screen<F>(
    name: &str,
    n: usize,
    seed: u64,
    config: &BistConfig,
    mut draw: F,
) -> (String, Vec<String>)
where
    F: FnMut(&mut StdRng) -> TransferFunction,
{
    let spec = *config.spec();
    let mut matrix = ConfusionMatrix::new();
    let mut screener = Screener::new(Workload::static_ramp(*config));
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..n {
        let tf = draw(&mut rng);
        let truth = spec.classify(&tf).good;
        matrix.record(truth, screener.screen_one(&tf, &mut rng).accepted());
    }
    let row = vec![
        name.to_owned(),
        fmt_prob(matrix.yield_fraction()),
        fmt_prob(matrix.type_i_rate()),
        fmt_prob(matrix.type_ii_rate()),
        matrix.total().to_string(),
    ];
    (name.to_owned(), row)
}

fn main() {
    Scenario::run("architectures", run);
}

fn run(sc: &mut Scenario) {
    let n = sc.usize_knob("BIST_BATCH", 600);
    let seed = sc.seed();
    let config = BistConfig::builder(Resolution::SIX_BIT, LinearitySpec::paper_stringent())
        .counter_bits(6)
        .build()
        .expect("paper operating point");
    eprintln!("architectures: {n} devices per population, 6-bit counter");

    let mut t = Table::new(&["architecture", "yield", "type I", "type II", "devices"])
        .with_title("One BIST, three converter architectures (±0.5 LSB spec)");
    let mut csv = Vec::new();

    let flash_cfg = FlashConfig::paper_device();
    let (_, row) = screen("flash (ladder σ)", n, seed, &config, |rng| {
        flash_cfg
            .sample(rng)
            .transfer()
            .expect("flash states transfer")
    });
    csv.push(row.clone());
    t.row_owned(row);

    let sar_cfg =
        SarConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4)).with_unit_cap_sigma(0.09);
    let (_, row) = screen("SAR (cap mismatch)", n, seed ^ 1, &config, |rng| {
        sar_cfg.sample(rng).transfer().expect("sar characterises")
    });
    csv.push(row.clone());
    t.row_owned(row);

    let pipe_cfg = PipelineConfig::new(Resolution::SIX_BIT, 3, Volts(0.0), Volts(6.4))
        .with_gain_sigma(0.08)
        .with_coarse_sigma_lsb(0.3);
    let (_, row) = screen("pipeline (gain err)", n, seed ^ 2, &config, |rng| {
        pipe_cfg
            .sample(rng)
            .transfer()
            .expect("pipeline characterises")
    });
    csv.push(row.clone());
    t.row_owned(row);

    println!("{t}");
    println!("reading: error rates stay in the same band across architectures even though");
    println!("the DNL signatures differ completely (iid widths vs binary-weighted steps vs");
    println!("coarse-boundary gaps) — the method never looks inside the converter.");
    let path = sc.csv(
        "architectures.csv",
        &["architecture", "yield", "type_i", "type_ii", "devices"],
        &csv,
    );
    eprintln!("wrote {}", path.display());
}
