//! Experiment E13 (illustrative): regenerates **Figure 3** — "LSB
//! contains linearity information".
//!
//! Sweeps a ramp through an ideal and a non-ideal converter and plots
//! the resulting LSB waveform against input voltage: for the ideal
//! transfer the LSB is a uniform square wave; code-width errors show up
//! directly as stretched/compressed LSB half-periods — the observation
//! the whole BIST rests on.

use bist_adc::sampler::{acquire, SamplingConfig};
use bist_adc::signal::Ramp;
use bist_adc::transfer::TransferFunction;
use bist_adc::types::{Resolution, Volts};
use bist_bench::Scenario;

fn lsb_row(adc: &TransferFunction, samples: usize) -> (Vec<u32>, Vec<bool>) {
    let capture = acquire(
        adc,
        &Ramp::new(Volts(-0.02), 1.0),
        SamplingConfig::new(1000.0, samples),
    );
    let lsb = capture.bits(0).collect();
    (capture.codes().iter().map(|c| c.0).collect(), lsb)
}

fn render(label: &str, bits: &[bool]) -> String {
    let wave: String = bits.iter().map(|&b| if b { '▔' } else { '▁' }).collect();
    format!("{label:>9} {wave}")
}

fn main() {
    Scenario::run("figure3", run);
}

fn run(sc: &mut Scenario) {
    // A 3-bit world keeps the figure readable, like the paper's sketch.
    let res = Resolution::new(3).expect("3 bits valid");
    let ideal = TransferFunction::ideal(res, Volts(0.0), Volts(0.8));

    // Non-ideal: code 2 wide (+0.5 LSB), code 3 narrow (−0.5 LSB),
    // mirroring Figure 3's "actual transfer function".
    let mut t: Vec<f64> = (1..=7).map(|k| k as f64 * 0.1).collect();
    t[2] += 0.05;
    let actual = TransferFunction::from_transitions(res, Volts(0.0), Volts(0.8), t);

    let samples = 900;
    let (ideal_codes, ideal_lsb) = lsb_row(&ideal, samples);
    let (actual_codes, actual_lsb) = lsb_row(&actual, samples);

    println!("Figure 3 — the LSB waveform under a ramp carries the code widths\n");
    let stride = 10; // compress for display
    let compress = |bits: &[bool]| -> Vec<bool> { bits.iter().step_by(stride).copied().collect() };
    println!("{}", render("ideal", &compress(&ideal_lsb)));
    println!("{}", render("actual", &compress(&actual_lsb)));
    println!("\n(code 2 widened by +0.5 LSB: its LSB half-period stretches; code 3");
    println!(" narrows correspondingly — measuring those run lengths IS the DNL test)");

    // Run-length summary, the quantitative content of the figure.
    let run_lengths = |bits: &[bool]| -> Vec<usize> {
        let mut runs = Vec::new();
        let mut len = 1;
        for w in bits.windows(2) {
            if w[0] == w[1] {
                len += 1;
            } else {
                runs.push(len);
                len = 1;
            }
        }
        runs
    };
    println!("\nLSB run lengths (samples per code):");
    println!("  ideal : {:?}", run_lengths(&ideal_lsb));
    println!("  actual: {:?}", run_lengths(&actual_lsb));

    let rows: Vec<Vec<String>> = ideal_codes
        .iter()
        .zip(&actual_codes)
        .enumerate()
        .map(|(i, (ic, ac))| {
            vec![
                (i as f64 * 0.001).to_string(),
                ic.to_string(),
                ac.to_string(),
            ]
        })
        .collect();
    let path = sc.csv(
        "figure3.csv",
        &["time_s", "ideal_code", "actual_code"],
        &rows,
    );
    eprintln!("wrote {}", path.display());
}
