//! Ablation: the §3 deglitch filter under comparator transition noise.
//!
//! §3 excludes transition noise from the theory but prescribes the cure:
//! "Toggles in the LSB can be removed by means of a simple digital
//! filter." This experiment sweeps the transition-noise level and
//! measures the BIST type-I rate with and without the majority-vote
//! deglitcher, quantifying both the damage the noise does and how much
//! of it the filter recovers.
//!
//! Knobs: `BIST_BATCH` (default 800), `BIST_SEED`, `BIST_WORKERS`
//! (0 = all cores).

use bist_adc::noise::NoiseConfig;
use bist_adc::spec::LinearitySpec;
use bist_adc::types::Resolution;
use bist_bench::Scenario;
use bist_core::config::BistConfig;
use bist_core::report::{fmt_prob, Table};
use bist_mc::batch::Batch;
use bist_mc::experiment::Experiment;
use bist_mc::parallel::run_parallel;

fn main() {
    Scenario::run("noise_ablation", run);
}

fn run(sc: &mut Scenario) {
    let n = sc.usize_knob("BIST_BATCH", 800);
    let seed = sc.seed();
    let workers = sc.workers();
    let spec = LinearitySpec::paper_stringent();
    eprintln!("noise_ablation: {n} devices per cell, 6-bit counter");

    let mut t = Table::new(&[
        "noise [LSB rms]",
        "raw type I",
        "deglitched type I",
        "raw type II",
        "deglitched type II",
    ])
    .with_title("Transition-noise ablation (±0.5 LSB spec, 6-bit counter)");
    let mut csv = Vec::new();
    for noise_lsb in [0.0, 0.002, 0.005, 0.01, 0.02, 0.04] {
        // 0.1 V per LSB in the batch devices.
        let noise = NoiseConfig::noiseless().with_transition_noise(noise_lsb * 0.1);
        let mut cells = Vec::new();
        for deglitch in [false, true] {
            let config = BistConfig::builder(Resolution::SIX_BIT, spec)
                .counter_bits(6)
                .deglitch(deglitch)
                .build()
                .expect("valid configuration");
            let batch = Batch::paper_simulation(seed, n);
            let result = run_parallel(&Experiment::new(batch, config).with_noise(noise), workers);
            cells.push((result.type_i(), result.type_ii()));
        }
        t.row_owned(vec![
            format!("{noise_lsb:.3}"),
            fmt_prob(cells[0].0.point()),
            fmt_prob(cells[1].0.point()),
            fmt_prob(cells[0].1.point()),
            fmt_prob(cells[1].1.point()),
        ]);
        csv.push(vec![
            noise_lsb.to_string(),
            fmt_prob(cells[0].0.point()),
            fmt_prob(cells[1].0.point()),
            fmt_prob(cells[0].1.point()),
            fmt_prob(cells[1].1.point()),
        ]);
    }
    println!("{t}");
    println!("reading: without the filter, small transition noise splits code runs and");
    println!("type I collapses toward 1; the 3-tap majority voter restores the noiseless");
    println!("rate until the noise approaches Δs (≈0.023 LSB at 6 bits), the regime limit");
    println!("the paper's 'simple digital filter' remark implies.");
    let path = sc.csv(
        "noise_ablation.csv",
        &[
            "noise_lsb",
            "raw_type_i",
            "deglitched_type_i",
            "raw_type_ii",
            "deglitched_type_ii",
        ],
        &csv,
    );
    eprintln!("wrote {}", path.display());
}
