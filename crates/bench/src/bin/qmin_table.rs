//! Experiment E8: the partial-BIST planning behaviour of Eqs. 1–2 —
//! how many bits `q_min` must stay off-chip as the stimulus speeds up.
//!
//! The paper's qualitative claims: at low stimulus frequency only the
//! LSB is needed (full BIST feasible); the faster the stimulus, the more
//! bits must be processed off-chip.

use bist_adc::types::Resolution;
use bist_bench::Scenario;
use bist_core::qmin::QminPlan;
use bist_core::report::Table;

fn main() {
    Scenario::run("qmin_table", run);
}

fn run(sc: &mut Scenario) {
    let f_sample = 1.0e6;
    let ratios: Vec<f64> = (0..=24)
        .map(|i| 10f64.powf(-6.0 + i as f64 * 0.25))
        .collect();

    let mut t = Table::new(&["f_stim/f_sample", "n=6", "n=8", "n=10", "n=12"])
        .with_title("q_min (off-chip bits) vs stimulus speed — DNL 0.5, INL 1.0 LSB");
    let mut csv = Vec::new();
    let plans: Vec<(u32, QminPlan)> = [6u32, 8, 10, 12]
        .into_iter()
        .map(|n| {
            (
                n,
                QminPlan::new(Resolution::new(n).expect("valid resolution"), 0.5, 1.0),
            )
        })
        .collect();
    for &ratio in &ratios {
        let cells: Vec<String> = plans
            .iter()
            .map(|(_, plan)| {
                plan.q_min(ratio * f_sample, f_sample)
                    .map_or_else(|| "-".to_owned(), |q| q.to_string())
            })
            .collect();
        let mut row = vec![format!("{ratio:.2e}")];
        row.extend(cells.clone());
        t.row_owned(row);
        let mut crow = vec![ratio.to_string()];
        crow.extend(cells);
        csv.push(crow);
    }
    println!("{t}");

    println!("max testable stimulus ratio per q (n = 6):");
    let plan = QminPlan::new(Resolution::SIX_BIT, 0.5, 1.0);
    for q in 1..=6 {
        println!(
            "  q = {q}: f_stim/f_sample ≤ {:.3e}",
            plan.max_stimulus_ratio(q)
        );
    }
    let path = sc.csv("qmin_table.csv", &["ratio", "n6", "n8", "n10", "n12"], &csv);
    eprintln!("wrote {}", path.display());
}
