//! CI performance gate: diffs fresh fleet perf records
//! (`bench/out/<name>.json`) against the committed baselines
//! (`crates/bench/baseline/<name>.json`).
//!
//! Rules, per record:
//!
//! * the fresh `divergences` metric (when present) must be 0 — a
//!   behavioural↔RTL disagreement is a correctness failure regardless
//!   of speed;
//! * every baseline metric whose key ends in `devices_per_s` must not
//!   regress by more than the tolerance (default 25 %,
//!   `BIST_PERF_TOLERANCE` overrides, e.g. `0.4` for 40 %);
//! * every gated baseline metric must still exist in the fresh record
//!   (a silently dropped metric would un-gate itself).
//!
//! Baselines are committed from a run on the reference runner class;
//! refresh them (copy `bench/out/<name>.json` over
//! `crates/bench/baseline/<name>.json`) when the runner hardware or
//! the smoke knobs change. Exits 1 on any violation, printing one line
//! per check.
//!
//! Usage: `perf_gate [record-name ...]` (default: `seq_fleet rtl_fleet
//! dyn_fleet batched_fleet arch_fleet service_soak`).

use bist_bench::{baseline_dir, env_f64, out_dir, record_metric, record_metrics};
use std::fs;

fn main() {
    let mut names: Vec<String> = std::env::args().skip(1).collect();
    if names.is_empty() {
        names = vec![
            "seq_fleet".to_owned(),
            "rtl_fleet".to_owned(),
            "dyn_fleet".to_owned(),
            "batched_fleet".to_owned(),
            "arch_fleet".to_owned(),
            "service_soak".to_owned(),
        ];
    }
    let tolerance = env_f64("BIST_PERF_TOLERANCE", 0.25);
    let mut failures = 0u32;
    let mut fail = |msg: String| {
        println!("FAIL  {msg}");
        failures += 1;
    };

    for name in &names {
        let fresh_path = out_dir().join(format!("{name}.json"));
        let base_path = baseline_dir().join(format!("{name}.json"));
        let Ok(fresh) = fs::read_to_string(&fresh_path) else {
            fail(format!(
                "{name}: fresh record missing at {}",
                fresh_path.display()
            ));
            continue;
        };
        let Ok(base) = fs::read_to_string(&base_path) else {
            fail(format!(
                "{name}: committed baseline missing at {}",
                base_path.display()
            ));
            continue;
        };
        match record_metric(&fresh, "divergences") {
            Some(d) if d > 0.0 => fail(format!("{name}: {d:.0} backend divergences (want 0)")),
            Some(_) => println!("ok    {name}: 0 divergences"),
            None => println!("note  {name}: no divergences metric"),
        }
        for (key, base_value) in record_metrics(&base) {
            if !key.ends_with("devices_per_s") || base_value <= 0.0 {
                continue;
            }
            let floor = base_value * (1.0 - tolerance);
            match record_metric(&fresh, &key) {
                None => fail(format!(
                    "{name}: gated metric {key} missing from fresh record"
                )),
                Some(v) if v < floor => fail(format!(
                    "{name}: {key} regressed {v:.1} < {floor:.1} \
                     (baseline {base_value:.1}, tolerance {:.0}%)",
                    tolerance * 100.0
                )),
                Some(v) => println!(
                    "ok    {name}: {key} {v:.1} vs baseline {base_value:.1} \
                     (floor {floor:.1})"
                ),
            }
        }
    }
    if failures > 0 {
        println!("perf_gate: {failures} check(s) failed");
        std::process::exit(1);
    }
    println!("perf_gate: all checks passed ({} records)", names.len());
}
