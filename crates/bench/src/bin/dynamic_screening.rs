//! Experiment E12 (quantitative): dynamic-parameter screening through
//! the same capture path — THD, SINAD, ENOB and noise power versus
//! process spread.
//!
//! §2: "In the so-called dynamic tests, the Total Harmonic Distortion
//! and the introduced noise power are the main test parameters." This
//! binary drives Monte-Carlo populations at several mismatch levels with
//! a coherent full-scale sine and reports the population statistics of
//! the FFT metrics, plus the Welch noise-power estimate — the dynamic
//! test the BIST capture path enables.
//!
//! Knobs: `BIST_BATCH` (default 100 devices/cell), `BIST_SEED`.
//! (Runs sequentially by design: each cell draws devices from one
//! shared RNG stream.)

use bist_adc::flash::FlashConfig;
use bist_adc::sampler::{acquire, SamplingConfig};
use bist_adc::signal::SineWave;
use bist_adc::types::{Resolution, Volts};
use bist_bench::Scenario;
use bist_core::report::Table;
use bist_dsp::spectrum::{analyze_tone, ideal_sinad_db, ToneAnalysisConfig};
use bist_dsp::stats::Running;
use bist_dsp::welch::welch_psd;
use bist_dsp::Window;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    Scenario::run("dynamic_screening", run);
}

fn run(sc: &mut Scenario) {
    let n_devices = sc.usize_knob("BIST_BATCH", 100);
    let seed = sc.seed();
    let record_len = 4096usize;
    let fs = 1.0e6;
    let f_in = SineWave::coherent_frequency(1021, record_len, fs);
    let sine = SineWave::new(3.26, f_in, 0.0, Volts(3.2));
    eprintln!("dynamic_screening: {n_devices} devices per σ cell");

    let mut t = Table::new(&[
        "σ_w [LSB]",
        "SINAD [dB]",
        "THD [dB]",
        "ENOB [bits]",
        "noise power [LSB²]",
    ])
    .with_title(
        format!(
            "Dynamic metrics vs process spread (ideal 6-bit SINAD {:.1} dB)",
            ideal_sinad_db(6)
        )
        .as_str(),
    );
    let mut csv = Vec::new();
    for sigma in [0.0, 0.1, 0.16, 0.21, 0.3] {
        let cfg = FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
            .with_width_sigma_lsb(sigma);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sinad = Running::new();
        let mut thd = Running::new();
        let mut enob = Running::new();
        let mut noise_power = Running::new();
        for _ in 0..n_devices {
            let adc = cfg.sample(&mut rng);
            let capture = acquire(&adc, &sine, SamplingConfig::new(fs, record_len));
            let record: Vec<f64> = capture.normalized(6).collect();
            let analysis = analyze_tone(&record, &ToneAnalysisConfig::default())
                .expect("4096 is a power of two");
            sinad.push(analysis.sinad_db);
            thd.push(analysis.thd_db);
            enob.push(analysis.enob);
            // Noise power via Welch on the sine-fit residual style:
            // subtract the carrier by excluding its band from the PSD.
            let psd = welch_psd(&record, 512, Window::Hann).expect("valid segments");
            let carrier_bin = 1021 * 512 / record_len;
            let total = psd.total_power();
            let carrier = psd.band_power(carrier_bin.saturating_sub(3), carrier_bin + 3);
            // Express in (code) LSB²: record is normalised to 1/64 per LSB.
            noise_power.push((total - carrier).max(0.0) * 64.0 * 64.0);
        }
        t.row_owned(vec![
            format!("{sigma:.2}"),
            format!("{:.1} ± {:.1}", sinad.mean(), sinad.std_dev()),
            format!("{:.1} ± {:.1}", thd.mean(), thd.std_dev()),
            format!("{:.2} ± {:.2}", enob.mean(), enob.std_dev()),
            format!("{:.3} ± {:.3}", noise_power.mean(), noise_power.std_dev()),
        ]);
        csv.push(vec![
            sigma.to_string(),
            sinad.mean().to_string(),
            thd.mean().to_string(),
            enob.mean().to_string(),
            noise_power.mean().to_string(),
        ]);
    }
    println!("{t}");
    println!("reading: mismatch costs ~1 ENOB at the paper's worst-case σ = 0.21; the");
    println!("noise-power column is the §2 'introduced noise power' parameter, estimated");
    println!("with Welch averaging from the same record the static BIST would capture.");
    let path = sc.csv(
        "dynamic_screening.csv",
        &[
            "sigma_lsb",
            "sinad_db",
            "thd_db",
            "enob",
            "noise_power_lsb2",
        ],
        &csv,
    );
    eprintln!("wrote {}", path.display());
}
