//! Experiment E12 (quantitative): dynamic-parameter screening through
//! the **streaming** dynamic path — THD, SINAD, ENOB and introduced
//! noise power versus process spread.
//!
//! §2: "In the so-called dynamic tests, the Total Harmonic Distortion
//! and the introduced noise power are the main test parameters." This
//! binary drives Monte-Carlo populations at several mismatch levels
//! with a coherent full-scale sine and reports the population
//! statistics of the four dynamic metrics, now produced by the
//! allocation-free Goertzel-bank verdict path of `bist_core::dynamic`
//! (no 4096-sample record is materialised), plus the acceptance rate
//! under the default [`bist_core::dynamic::DynamicLimits`].
//!
//! Every σ cell draws its devices from its **own** seeded RNG stream
//! (`(seed, cell, device)` mixing), so cells are decorrelated and the
//! sweep fans out over `BIST_WORKERS` threads with results independent
//! of the worker count — the old sequential shared-stream limitation is
//! gone.
//!
//! Knobs: `BIST_BATCH` (default 100 devices/cell), `BIST_SEED`,
//! `BIST_WORKERS`, and `BIST_FFT_CHECK=1` to cross-check every
//! streaming verdict against the materialised FFT analysis
//! (`analyze_tone`) as a debug assertion (~2× slower).

use bist_adc::flash::FlashConfig;
use bist_adc::sampler::SamplingConfig;
use bist_adc::stream::CodeStream;
use bist_adc::types::{Resolution, Volts};
use bist_bench::Scenario;
use bist_core::dynamic::{
    plan_sine, process_dyn_code_stream, DynScratch, DynamicConfig, DynamicVerdict,
};
use bist_core::report::Table;
use bist_dsp::spectrum::{analyze_tone, ideal_sinad_db, ToneAnalysisConfig};
use bist_dsp::stats::Running;
use bist_mc::parallel::partitioned;
use rand::rngs::StdRng;

/// The mismatch cells of the sweep (code-width σ in LSB).
const SIGMAS: [f64; 5] = [0.0, 0.1, 0.16, 0.21, 0.3];

fn main() {
    Scenario::run("dynamic_screening", run);
}

/// Per-cell population statistics of the dynamic metrics.
#[derive(Debug, Default, Clone, Copy)]
struct CellStats {
    sinad: Running,
    thd: Running,
    enob: Running,
    noise_power: Running,
    accepted: u64,
}

impl CellStats {
    fn record(&mut self, v: &DynamicVerdict) {
        self.sinad.push(v.sinad_db);
        self.thd.push(v.thd_db);
        self.enob.push(v.enob);
        self.noise_power.push(v.noise_power_lsb2);
        self.accepted += u64::from(v.accepted());
    }

    fn merge(&mut self, other: &CellStats) {
        self.sinad.merge(&other.sinad);
        self.thd.merge(&other.thd);
        self.enob.merge(&other.enob);
        self.noise_power.merge(&other.noise_power);
        self.accepted += other.accepted;
    }
}

/// The device RNG for `(seed, cell, device)` — each σ cell owns an
/// independent stream (the shared `bist_mc::batch::stream_rng` mixing).
fn cell_device_rng(seed: u64, cell: usize, device: usize) -> StdRng {
    bist_mc::batch::stream_rng(seed, &[cell as u64, device as u64])
}

fn run(sc: &mut Scenario) {
    let n_devices = sc.usize_knob("BIST_BATCH", 100);
    let seed = sc.seed();
    let workers = sc.workers();
    let fft_check = sc.usize_knob("BIST_FFT_CHECK", 0) != 0;
    let config = DynamicConfig::paper_default();
    eprintln!(
        "dynamic_screening: {n_devices} devices per σ cell, streaming Goertzel path{}",
        if fft_check { " + FFT cross-check" } else { "" }
    );

    let mut t = Table::new(&[
        "σ_w [LSB]",
        "SINAD [dB]",
        "THD [dB]",
        "ENOB [bits]",
        "noise power [LSB²]",
        "accept %",
    ])
    .with_title(
        format!(
            "Dynamic metrics vs process spread (ideal 6-bit SINAD {:.1} dB; limits: {})",
            ideal_sinad_db(6),
            config.limits()
        )
        .as_str(),
    );
    let mut csv = Vec::new();
    let mut screened = 0u64;
    // Devices are accumulated in fixed-size blocks and the block
    // statistics merged in block order, so the full-precision CSV is
    // bit-identical for any worker count (a worker-shaped Welford
    // grouping would drift in the last ulps).
    const BLOCK: usize = 64;
    for (cell, &sigma) in SIGMAS.iter().enumerate() {
        let flash = FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
            .with_width_sigma_lsb(sigma);
        let blocks = n_devices.div_ceil(BLOCK);
        let partials: Vec<Vec<CellStats>> = partitioned(blocks, workers, |b_from, b_to| {
            let mut scratch = DynScratch::new();
            (b_from..b_to)
                .map(|block| {
                    let mut stats = CellStats::default();
                    for device in block * BLOCK..((block + 1) * BLOCK).min(n_devices) {
                        let adc = flash.sample(&mut cell_device_rng(seed, cell, device));
                        let (sine, sampling) = plan_sine(&adc, &config);
                        let verdict = process_dyn_code_stream(
                            &config,
                            CodeStream::noiseless(&adc, &sine, sampling),
                            &mut scratch,
                        );
                        if fft_check {
                            fft_cross_check(&adc, &config, &sine, sampling, &verdict);
                        }
                        stats.record(&verdict);
                    }
                    stats
                })
                .collect()
        });
        let mut stats = CellStats::default();
        for p in partials.iter().flatten() {
            stats.merge(p);
        }
        screened += stats.sinad.count();
        let accept_pct = 100.0 * stats.accepted as f64 / stats.sinad.count().max(1) as f64;
        t.row_owned(vec![
            format!("{sigma:.2}"),
            format!("{:.1} ± {:.1}", stats.sinad.mean(), stats.sinad.std_dev()),
            format!("{:.1} ± {:.1}", stats.thd.mean(), stats.thd.std_dev()),
            format!("{:.2} ± {:.2}", stats.enob.mean(), stats.enob.std_dev()),
            format!(
                "{:.3} ± {:.3}",
                stats.noise_power.mean(),
                stats.noise_power.std_dev()
            ),
            format!("{accept_pct:.0}"),
        ]);
        csv.push(vec![
            sigma.to_string(),
            stats.sinad.mean().to_string(),
            stats.thd.mean().to_string(),
            stats.enob.mean().to_string(),
            stats.noise_power.mean().to_string(),
            (accept_pct / 100.0).to_string(),
        ]);
    }
    println!("{t}");
    println!("reading: mismatch costs ~1 ENOB at the paper's worst-case σ = 0.21; the");
    println!("noise-power column is the §2 'introduced noise power' parameter, taken from");
    println!("the same streaming Goertzel decomposition that judges the device — no record");
    println!("buffer, no FFT, and the fleet acceptance collapses as the spread grows.");
    sc.metric_count("devices", screened);
    let path = sc.csv(
        "dynamic_screening.csv",
        &[
            "sigma_lsb",
            "sinad_db",
            "thd_db",
            "enob",
            "noise_power_lsb2",
            "acceptance",
        ],
        &csv,
    );
    eprintln!("wrote {}", path.display());
}

/// Debug assertion behind `BIST_FFT_CHECK`: the streaming verdict must
/// agree with the materialised FFT analysis of the identical capture.
fn fft_cross_check(
    adc: &impl bist_adc::transfer::Adc,
    config: &DynamicConfig,
    sine: &bist_adc::signal::SineWave,
    sampling: SamplingConfig,
    verdict: &DynamicVerdict,
) {
    let capture = CodeStream::noiseless(adc, sine, sampling).capture();
    let record: Vec<f64> = capture.normalized(config.resolution().bits()).collect();
    let analysis = analyze_tone(
        &record,
        &ToneAnalysisConfig {
            fundamental_bin: Some(config.cycles() as usize),
            ..Default::default()
        },
    )
    .expect("coherent record length is a power of two");
    assert!(
        (analysis.sinad_db - verdict.sinad_db).abs() < 1e-6,
        "FFT cross-check failed: SINAD {} (fft) vs {} (stream)",
        analysis.sinad_db,
        verdict.sinad_db
    );
    assert!(
        (analysis.thd_db - verdict.thd_db).abs() < 1e-6,
        "FFT cross-check failed: THD {} (fft) vs {} (stream)",
        analysis.thd_db,
        verdict.thd_db
    );
}
