//! Experiment E3: regenerates **Table 2** of the paper — simulated error
//! probabilities at the actual ±1 LSB DNL spec, where
//! `P(device faulty) ≈ 1.4×10⁻⁴` and type II escapes must stay within
//! the 10–100 ppm customer requirement.
//!
//! The paper's numbers are *joint* device fractions (×10⁻⁶); the binary
//! also prints the conditional `P(accept|faulty)` from theory and from a
//! rare-event Monte Carlo (devices sampled conditioned on being faulty).
//!
//! Knobs: `BIST_FAULTY_DEVICES` (conditioned draws per row, default
//! 4000), `BIST_SEED`, `BIST_WORKERS` (0 = all cores).

use bist_bench::Scenario;
use bist_core::report::Table;
use bist_mc::tables::table2;

/// The paper's published Table 2: counter bits → (type I ×10⁻⁶,
/// type II ×10⁻⁶, max error LSB).
const PAPER: [(u32, f64, f64, &str); 4] = [
    (4, 40.0, 70.0, "1/8"),
    (5, 20.0, 40.0, "1/16"),
    (6, 10.0, 25.0, "1/32"),
    (7, 5.0, 15.0, "1/64"),
];

fn main() {
    Scenario::run("table2", run);
}

fn run(sc: &mut Scenario) {
    let faulty = sc.usize_knob("BIST_FAULTY_DEVICES", 4000);
    let seed = sc.seed();
    let workers = sc.workers();
    eprintln!("table2: {faulty} conditioned faulty devices per counter size");
    let rows = table2(faulty, seed, workers);

    let mut t = Table::new(&[
        "counter",
        "paper I e-6",
        "ours I e-6",
        "paper II e-6",
        "ours II e-6",
        "cond II theory",
        "cond II MC",
        "paper max err",
        "ours max err",
    ])
    .with_title("Table 2 — actual DNL spec ±1 LSB (joint device fractions)");
    let mut csv = Vec::new();
    for (row, paper) in rows.iter().zip(PAPER.iter()) {
        assert_eq!(row.counter_bits, paper.0);
        t.row_owned(vec![
            row.counter_bits.to_string(),
            format!("{:.0}", paper.1),
            format!("{:.1}", row.type_i_joint * 1e6),
            format!("{:.0}", paper.2),
            format!("{:.1}", row.type_ii_joint * 1e6),
            format!("{:.3}", row.type_ii_conditional),
            format!(
                "{:.3}",
                row.mc_type_ii_conditional.point().unwrap_or(f64::NAN)
            ),
            paper.3.to_string(),
            format!("{:.4}", row.max_error_lsb),
        ]);
        csv.push(vec![
            row.counter_bits.to_string(),
            (row.type_i_joint * 1e6).to_string(),
            (row.type_ii_joint * 1e6).to_string(),
            row.type_ii_conditional.to_string(),
            row.mc_type_ii_conditional
                .point()
                .unwrap_or(f64::NAN)
                .to_string(),
            row.max_error_lsb.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "shipped-defect check: all type II joint values within 10-100 ppm? {}",
        rows.iter().all(|r| r.type_ii_joint < 100e-6)
    );
    let path = sc.csv(
        "table2.csv",
        &[
            "counter_bits",
            "type_i_joint_e6",
            "type_ii_joint_e6",
            "type_ii_conditional",
            "mc_type_ii_conditional",
            "max_error_lsb",
        ],
        &csv,
    );
    eprintln!("wrote {}", path.display());
}
