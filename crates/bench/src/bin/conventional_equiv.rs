//! Experiment E10: §4's closing claim — *"The quality of the
//! conventional test, where 4096 samples are taken for the test of all
//! the codes, can be compared to the BIST with a 7-bit counter."*
//!
//! Runs both tests on the same device batches and compares their
//! confusion matrices and device-level agreement, for counter sizes 4–7.
//!
//! Knobs: `BIST_BATCH` (default 2000), `BIST_SEED`, `BIST_WORKERS`
//! (0 = all cores).

use bist_adc::spec::LinearitySpec;
use bist_adc::types::Resolution;
use bist_bench::Scenario;
use bist_core::config::BistConfig;
use bist_core::report::{fmt_prob, Table};
use bist_mc::batch::Batch;
use bist_mc::experiment::run_equivalence;

fn main() {
    Scenario::run("conventional_equiv", run);
}

fn run(sc: &mut Scenario) {
    let n = sc.usize_knob("BIST_BATCH", 2000);
    let seed = sc.seed();
    let workers = sc.workers();
    let spec = LinearitySpec::paper_stringent();
    eprintln!("conventional_equiv: {n} iid-width devices, spec {spec}");

    let mut t = Table::new(&[
        "counter",
        "BIST type I",
        "BIST type II",
        "conv type I",
        "conv type II",
        "agreement",
    ])
    .with_title("BIST vs conventional 4096-sample histogram test (same devices)");
    let mut csv = Vec::new();
    for bits in 4..=7u32 {
        let cfg = BistConfig::builder(Resolution::SIX_BIT, spec)
            .counter_bits(bits)
            .build()
            .expect("paper operating points are valid");
        let batch = Batch::paper_simulation(seed, n);
        let res = run_equivalence(&batch, &cfg, 4096, workers);
        t.row_owned(vec![
            bits.to_string(),
            fmt_prob(res.bist.type_i_rate()),
            fmt_prob(res.bist.type_ii_rate()),
            fmt_prob(res.conventional.type_i_rate()),
            fmt_prob(res.conventional.type_ii_rate()),
            format!("{:.3}", res.agreement_rate()),
        ]);
        csv.push(vec![
            bits.to_string(),
            fmt_prob(res.bist.type_i_rate()),
            fmt_prob(res.bist.type_ii_rate()),
            fmt_prob(res.conventional.type_i_rate()),
            fmt_prob(res.conventional.type_ii_rate()),
            res.agreement_rate().to_string(),
        ]);
        if bits == 7 {
            println!(
                "paper's claim at 7 bits: BIST ≈ conventional — type I {} vs {}, type II {} vs {}, agreement {:.1}%",
                fmt_prob(res.bist.type_i_rate()),
                fmt_prob(res.conventional.type_i_rate()),
                fmt_prob(res.bist.type_ii_rate()),
                fmt_prob(res.conventional.type_ii_rate()),
                res.agreement_rate() * 100.0
            );
        }
    }
    println!("{t}");
    let path = sc.csv(
        "conventional_equiv.csv",
        &[
            "counter_bits",
            "bist_type_i",
            "bist_type_ii",
            "conv_type_i",
            "conv_type_ii",
            "agreement",
        ],
        &csv,
    );
    eprintln!("wrote {}", path.display());
}
