//! Experiment E1/E2: regenerates **Table 1** of the paper — type I and
//! type II error probabilities vs counter size under the stringent
//! ±0.5 LSB DNL spec.
//!
//! Columns: the paper's published SIM/MEAS values, our analytic theory
//! (SIM), a Monte-Carlo run on iid-width devices (validating the
//! theory), and a "measurement" run on physically-modelled flash devices
//! with the paper's inferred ramp-slope error.
//!
//! Knobs: `BIST_SIM_BATCH` / `BIST_MEAS_BATCH` (device counts,
//! default 4000), `BIST_SEED`, `BIST_WORKERS` (0 = all cores).

use bist_bench::Scenario;
use bist_core::report::{fmt_prob, Table};
use bist_mc::tables::{table1, Table1Config};

/// The paper's published Table 1 (counter bits → (sim I, sim II, meas I,
/// meas II, Δs)).
const PAPER: [(u32, f64, f64, f64, f64, f64); 4] = [
    (4, 0.065, 0.045, 0.13, 0.03, 0.09),
    (5, 0.025, 0.045, 0.06, 0.03, 0.05),
    (6, 0.015, 0.015, 0.04, 0.02, 0.02),
    (7, 0.015, 0.005, 0.02, 0.01, 0.01),
];

fn main() {
    Scenario::run("table1", run);
}

fn run(sc: &mut Scenario) {
    let cfg = Table1Config {
        sim_batch: sc.usize_knob("BIST_SIM_BATCH", 4000),
        meas_batch: sc.usize_knob("BIST_MEAS_BATCH", 4000),
        slope_error_millis: -22,
        seed: sc.seed(),
        workers: sc.workers(),
    };
    eprintln!(
        "table1: sim batch {}, meas batch {} (paper used 364 silicon devices)",
        cfg.sim_batch, cfg.meas_batch
    );
    let rows = table1(&cfg);

    let mut t = Table::new(&[
        "counter",
        "Δs [LSB]",
        "paper sim I",
        "ours sim I",
        "MC sim I",
        "paper sim II",
        "ours sim II",
        "MC sim II",
        "paper meas I",
        "ours meas I",
        "paper meas II",
        "ours meas II",
    ])
    .with_title("Table 1 — stringent DNL spec ±0.5 LSB (conditional rates)");
    let mut csv = Vec::new();
    for (row, paper) in rows.iter().zip(PAPER.iter()) {
        assert_eq!(row.counter_bits, paper.0);
        t.row_owned(vec![
            row.counter_bits.to_string(),
            format!("{:.4}", row.delta_s),
            format!("{:.3}", paper.1),
            fmt_prob(Some(row.sim_type_i)),
            fmt_prob(row.sim_mc_type_i.point()),
            format!("{:.3}", paper.2),
            fmt_prob(Some(row.sim_type_ii)),
            fmt_prob(row.sim_mc_type_ii.point()),
            format!("{:.3}", paper.3),
            fmt_prob(row.meas_type_i.point()),
            format!("{:.3}", paper.4),
            fmt_prob(row.meas_type_ii.point()),
        ]);
        csv.push(vec![
            row.counter_bits.to_string(),
            row.delta_s.to_string(),
            row.sim_type_i.to_string(),
            row.sim_type_ii.to_string(),
            fmt_prob(row.sim_mc_type_i.point()),
            fmt_prob(row.sim_mc_type_ii.point()),
            fmt_prob(row.meas_type_i.point()),
            fmt_prob(row.meas_type_ii.point()),
        ]);
    }
    println!("{t}");
    println!("trend: type I ratio per extra counter bit (paper: ~0.5):");
    for w in rows.windows(2) {
        println!(
            "  {} -> {} bits: analytic {:.2}",
            w[0].counter_bits,
            w[1].counter_bits,
            w[1].sim_type_i / w[0].sim_type_i
        );
    }
    println!(
        "\n95% Wilson intervals (measurement): type I {}, {}, {}, {}",
        rows[0].meas_type_i, rows[1].meas_type_i, rows[2].meas_type_i, rows[3].meas_type_i
    );
    let path = sc.csv(
        "table1.csv",
        &[
            "counter_bits",
            "delta_s_lsb",
            "sim_type_i",
            "sim_type_ii",
            "mc_sim_type_i",
            "mc_sim_type_ii",
            "meas_type_i",
            "meas_type_ii",
        ],
        &csv,
    );
    eprintln!("wrote {}", path.display());
}
