//! Ablation: sensitivity of the whole evaluation to the process spread
//! σ, which the paper only brackets ("0.16–0.21 LSB from circuit
//! simulation", worst case 0.21 used throughout).
//!
//! For each σ the binary reports the stringent-spec yield, the actual-
//! spec fault probability, and the 4-bit/7-bit analytic type-I rates —
//! showing how strongly each published number depends on the one
//! parameter the authors could not pin down.

use bist_adc::spec::LinearitySpec;
use bist_bench::Scenario;
use bist_core::analytic::WidthDistribution;
use bist_core::limits::plan_delta_s;
use bist_core::report::{fmt_prob, Table};
use bist_core::yield_model::YieldModel;
use bist_mc::tables::{analytic_point, JUDGED_CODES};

fn main() {
    Scenario::run("sigma_sweep", run);
}

fn run(sc: &mut Scenario) {
    let stringent = LinearitySpec::paper_stringent();
    let actual = LinearitySpec::paper_actual();
    let ds4 = plan_delta_s(&stringent, 4).0;
    let ds7 = plan_delta_s(&stringent, 7).0;

    let mut t = Table::new(&[
        "σ [LSB]",
        "yield ±0.5",
        "P(faulty) ±1",
        "type I (4b)",
        "type I (7b)",
        "type II (4b)",
    ])
    .with_title("Process-spread sensitivity (the paper fixes σ = 0.21 worst case)");
    let mut csv = Vec::new();
    for sigma in [0.14, 0.16, 0.18, 0.20, 0.21, 0.23, 0.26] {
        let model = YieldModel::new(WidthDistribution::new(1.0, sigma), 64);
        let p4 = analytic_point(&stringent, sigma, ds4, JUDGED_CODES);
        let p7 = analytic_point(&stringent, sigma, ds7, JUDGED_CODES);
        let yield_stringent = model.p_device_good(&stringent);
        let faulty_actual = model.p_device_faulty(&actual);
        t.row_owned(vec![
            format!("{sigma:.2}"),
            format!("{yield_stringent:.3}"),
            fmt_prob(Some(faulty_actual)),
            format!("{:.4}", p4.type_i),
            format!("{:.4}", p7.type_i),
            format!("{:.4}", p4.type_ii),
        ]);
        csv.push(vec![
            sigma.to_string(),
            yield_stringent.to_string(),
            faulty_actual.to_string(),
            p4.type_i.to_string(),
            p7.type_i.to_string(),
            p4.type_ii.to_string(),
        ]);
    }
    println!("{t}");
    println!("reading: the paper's '30 % yield' anchor moves from 69 % (σ=0.16) to 33 %");
    println!("(σ=0.21); its Table 1 sim values are consistent with an effective σ nearer");
    println!("0.18 than the stated 0.21 worst case — see EXPERIMENTS.md E1 discussion.");
    let path = sc.csv(
        "sigma_sweep.csv",
        &[
            "sigma_lsb",
            "yield_stringent",
            "p_faulty_actual",
            "type_i_4b",
            "type_i_7b",
            "type_ii_4b",
        ],
        &csv,
    );
    eprintln!("wrote {}", path.display());
}
