//! Workspace walking and whole-workspace analysis: collect every `.rs`
//! file, derive each file's [`FileContext`] from its path, run pass 1
//! (kernel collection) then pass 2 (all rules) and fold the tallies.

use crate::rules::{analyze_file, collect_kernels, Diagnostic, FileContext, FileStats};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Library source roots of the report-producing crates — the crates
/// whose outputs feed `report_checksum`-gated fleet reports, where the
/// `determinism` rule applies.
pub const REPORT_CRATE_ROOTS: [&str; 5] = [
    "crates/core/src/",
    "crates/dsp/src/",
    "crates/rtl/src/",
    "crates/mc/src/",
    "crates/serve/src/",
];

/// The designated seeded-RNG seam modules: the only places in the
/// report-producing crates allowed to construct RNGs. The canonical
/// derivations (`stream_rng`, `device_rng`, the SplitMix64 finaliser)
/// live in `bist_core::source` next to the device-generation seam;
/// `bist_mc::batch` re-exports them and keeps its historical path.
pub const RNG_SEAMS: [&str; 2] = ["crates/core/src/source.rs", "crates/mc/src/batch.rs"];

/// Aggregated result of a workspace run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Every finding, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Summed per-file tallies.
    pub stats: FileStats,
    /// `#[target_feature]` kernels found workspace-wide.
    pub kernels: BTreeSet<String>,
}

impl Analysis {
    /// Findings for one rule.
    pub fn count(&self, rule: crate::rules::Rule) -> usize {
        self.diagnostics.iter().filter(|d| d.rule == rule).count()
    }
}

/// Derives a file's rule scope from its workspace-relative path.
pub fn context_for(rel: &str) -> FileContext {
    let test_code = rel
        .split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples");
    FileContext {
        path: rel.to_owned(),
        report_crate: !test_code && REPORT_CRATE_ROOTS.iter().any(|r| rel.starts_with(r)),
        test_code,
        rng_seam: RNG_SEAMS.contains(&rel),
    }
}

/// Collects every analyzable `.rs` file under `root`, workspace-relative
/// with forward slashes, sorted. Skips build output (`target/`), VCS
/// internals, and the linter's own golden fixtures (which exist to
/// violate the rules).
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

/// Runs the full two-pass analysis over the workspace at `root`.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let files = collect_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        sources.push((rel.to_string_lossy().replace('\\', "/"), src));
    }
    // Pass 1: every `#[target_feature]` kernel in the workspace, so a
    // call site anywhere is checked against the full set.
    let mut kernels = BTreeSet::new();
    for (_, src) in &sources {
        kernels.extend(collect_kernels(src));
    }
    // Pass 2: all rules per file.
    let mut analysis = Analysis {
        files_scanned: sources.len(),
        kernels,
        ..Analysis::default()
    };
    for (rel, src) in &sources {
        let ctx = context_for(rel);
        let (diags, stats) = analyze_file(src, &ctx, &analysis.kernels);
        analysis.diagnostics.extend(diags);
        analysis.stats.hot_regions += stats.hot_regions;
        analysis.stats.allow_markers += stats.allow_markers;
        analysis.stats.unsafe_sites += stats.unsafe_sites;
        analysis.stats.ordering_sites += stats.ordering_sites;
        analysis.stats.kernel_calls += stats.kernel_calls;
    }
    analysis.diagnostics.sort();
    Ok(analysis)
}

/// Walks upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]` — the analysis root when `--root` is absent.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_follow_paths() {
        let c = context_for("crates/core/src/batch.rs");
        assert!(c.report_crate && !c.test_code && !c.rng_seam);
        let c = context_for("crates/mc/src/batch.rs");
        assert!(c.report_crate && c.rng_seam);
        let c = context_for("crates/core/src/source.rs");
        assert!(c.report_crate && c.rng_seam);
        let c = context_for("crates/serve/src/service.rs");
        assert!(c.report_crate && !c.test_code && !c.rng_seam);
        let c = context_for("crates/core/tests/zero_alloc.rs");
        assert!(!c.report_crate && c.test_code);
        let c = context_for("crates/serve/tests/backpressure.rs");
        assert!(!c.report_crate && c.test_code);
        let c = context_for("crates/bench/src/lib.rs");
        assert!(!c.report_crate && !c.test_code);
        let c = context_for("examples/quickstart.rs");
        assert!(c.test_code);
    }

    #[test]
    fn workspace_root_is_found() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/analysis").is_dir());
    }
}
