//! `bist-lint` — walk the workspace, enforce the engine invariants at
//! the source level, and emit a flat-JSON report.
//!
//! ```text
//! bist-lint [--root <dir>] [--json <path>] [--quiet]
//! ```
//!
//! Exits 0 when the workspace is clean, 1 on any violation, 2 on usage
//! or I/O errors. Without `--root`, the workspace root is found by
//! walking upward from the current directory.

#![forbid(unsafe_code)]

use bist_analysis::report::render_json;
use bist_analysis::{analyze_workspace, find_workspace_root, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_path = args.next().map(PathBuf::from),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("usage: bist-lint [--root <dir>] [--json <path>] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bist-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("bist-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bist-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_path {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, render_json(&analysis)) {
            eprintln!("bist-lint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for d in &analysis.diagnostics {
        println!("{d}");
    }
    if !quiet {
        let per_rule: Vec<String> = Rule::ALL
            .iter()
            .map(|&r| format!("{}: {}", r.name(), analysis.count(r)))
            .collect();
        eprintln!(
            "bist-lint: {} file(s), {} hot-path region(s), {} unsafe site(s), \
             {} ordering site(s), {} kernel call site(s), {} allow marker(s)",
            analysis.files_scanned,
            analysis.stats.hot_regions,
            analysis.stats.unsafe_sites,
            analysis.stats.ordering_sites,
            analysis.stats.kernel_calls,
            analysis.stats.allow_markers,
        );
        eprintln!(
            "bist-lint: {} violation(s) ({})",
            analysis.diagnostics.len(),
            per_rule.join(", ")
        );
    }
    if analysis.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
