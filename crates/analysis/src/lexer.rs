//! A small line-oriented Rust lexer: splits a source file into per-line
//! *code* and *comment* channels so the rules never match tokens inside
//! string literals or prose.
//!
//! This is not a full tokenizer — it only needs to classify every byte
//! as code, comment, or literal content. Literal contents are blanked to
//! spaces (delimiters kept), so downstream token searches see the code
//! shape with its layout intact; comment text is collected verbatim per
//! line, because two of the lint rules (`SAFETY:` / `ORDERING:`
//! justifications, `bist-lint:` markers) live *in* the comments.

/// One source line, split into its code and comment channels.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LexedLine {
    /// The code channel: source text with comments removed and
    /// string/char literal contents blanked to spaces.
    pub code: String,
    /// The comment channel: concatenated text of every line/block
    /// comment that touches this line (markers included).
    pub comment: String,
}

impl LexedLine {
    /// Whether the line carries no code at all (blank or comment-only).
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }

    /// Whether the line's code is exactly an attribute (`#[...]` or
    /// `#![...]`), possibly continued — attribute lines are neither
    /// `unsafe` sites nor justification breaks.
    pub fn is_attr(&self) -> bool {
        let t = self.code.trim_start();
        t.starts_with("#[") || t.starts_with("#![")
    }
}

/// Lexer state across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Normal,
    /// Nested block comment at the given depth.
    Block(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string closed by `"` + this many `#`s.
    RawStr(u32),
}

/// Whether `c` can be part of an identifier — the boundary test used
/// both here (raw-string prefix detection) and by the rule matchers.
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lexes a whole source file into per-line code/comment channels.
pub fn lex(src: &str) -> Vec<LexedLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut cur = LexedLine::default();
    let mut state = State::Normal;
    let mut i = 0usize;

    // Closes the current line on `\n`, preserving multi-line state.
    macro_rules! newline {
        () => {{
            lines.push(std::mem::take(&mut cur));
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        match state {
            State::Normal => {
                if c == '\n' {
                    newline!();
                    i += 1;
                } else if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment (`//`, `///`, `//!`): rest of line.
                    let mut j = i;
                    while j < chars.len() && chars[j] != '\n' {
                        cur.comment.push(chars[j]);
                        j += 1;
                    }
                    i = j;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::Block(1);
                    cur.comment.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Str;
                    i += 1;
                } else if let Some((prefix_len, hashes)) = raw_string_at(&chars, i) {
                    for k in 0..prefix_len {
                        cur.code.push(chars[i + k]);
                    }
                    state = State::RawStr(hashes);
                    i += prefix_len;
                } else if c == 'b' && chars.get(i + 1) == Some(&'"') && !prev_is_ident(&chars, i) {
                    cur.code.push_str("b\"");
                    state = State::Str;
                    i += 2;
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal either escapes
                    // (`'\n'`) or closes one char later (`'x'`); anything
                    // else (`'a`, `'static`) is a lifetime.
                    if chars.get(i + 1) == Some(&'\\') {
                        cur.code.push_str("' ");
                        i += 2;
                        // Skip the escape body to the closing quote.
                        while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                            cur.code.push(' ');
                            i += 1;
                        }
                        if chars.get(i) == Some(&'\'') {
                            cur.code.push('\'');
                            i += 1;
                        }
                    } else if chars.get(i + 2) == Some(&'\'') {
                        cur.code.push_str("' '");
                        i += 3;
                    } else {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::Block(depth) => {
                if c == '\n' {
                    newline!();
                    i += 1;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::Block(depth + 1);
                    cur.comment.push_str("/*");
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    cur.comment.push_str("*/");
                    state = if depth > 1 {
                        State::Block(depth - 1)
                    } else {
                        State::Normal
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\n' {
                    newline!();
                    i += 1;
                } else if c == '\\' {
                    cur.code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Normal;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '\n' {
                    newline!();
                    i += 1;
                } else if c == '"' && closes_raw(&chars, i, hashes) {
                    cur.code.push('"');
                    for _ in 0..hashes {
                        cur.code.push('#');
                    }
                    state = State::Normal;
                    i += 1 + hashes as usize;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // Final line without a trailing newline.
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// Detects a raw-string opener (`r"`, `r#"`, `br#"` …) at `i`,
/// returning `(prefix_len, hashes)`.
fn raw_string_at(chars: &[char], i: usize) -> Option<(usize, u32)> {
    if prev_is_ident(chars, i) {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((j - i + 1, hashes))
    } else {
        None
    }
}

/// Whether a `"` at `i` closes a raw string expecting `hashes` hashes.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && is_ident_char(chars[i - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_leave_the_code_channel() {
        let l = lex("let x = 1; // Vec::new() in prose\n");
        assert_eq!(l.len(), 1);
        assert!(!l[0].code.contains("Vec::new"));
        assert!(l[0].comment.contains("Vec::new"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let l = lex("let s = \"Vec::new() format!\";\nlet t = r#\"unsafe { }\"#;\n");
        assert!(!l[0].code.contains("Vec::new"));
        assert!(!l[1].code.contains("unsafe"));
        assert!(l[0].code.contains('"'), "delimiters survive");
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let l = lex(r#"let s = "a\"b"; let v = Vec::new();"#);
        assert!(l[0].code.contains("Vec::new"), "{:?}", l[0]);
    }

    #[test]
    fn block_comments_span_lines() {
        let l = lex("/* one\n   Vec::new()\n*/ let y = 2;\n");
        assert!(l[1].code.trim().is_empty());
        assert!(l[1].comment.contains("Vec::new"));
        assert!(l[2].code.contains("let y"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ still comment */ let z = 3;\n");
        assert!(l[0].code.contains("let z"));
        assert!(!l[0].code.contains("still"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x'; let n = '\\n';\n");
        assert!(l[0].code.contains("fn f<'a>"));
        assert!(l[1].code.contains("let c"));
        assert!(l[1].code.contains("let n"));
    }

    #[test]
    fn multiline_strings_keep_line_count() {
        let src = "let s = \"line1\nVec::new()\nline3\";\nlet x = 1;\n";
        let l = lex(src);
        assert_eq!(l.len(), 4);
        assert!(!l[1].code.contains("Vec::new"));
        assert!(l[3].code.contains("let x"));
    }

    #[test]
    fn attr_lines_classify() {
        let l = lex("#[cfg(test)]\n#![forbid(unsafe_code)]\nfn f() {}\n");
        assert!(l[0].is_attr());
        assert!(l[1].is_attr());
        assert!(!l[2].is_attr());
    }
}
