//! # bist-analysis
//!
//! `bist-lint`: a workspace-native static-analysis pass that proves the
//! `adc-bist` engine invariants at the *source* level — the shift-left
//! the paper's BIST philosophy applies to silicon, applied to the
//! reproduction itself. The three invariants the workspace already
//! enforces dynamically (zero allocation on the hot paths, bit-identical
//! fleet reports for any `workers × lane_width × chunk_size`, identical
//! early-stop latch points on both backends) each get a static shadow
//! that fires when the regression is *written*, not when a fleet run
//! diverges:
//!
//! * [`rules::Rule::HotPathAlloc`] — no allocating constructs inside
//!   `// bist-lint: hot-path`-marked regions (statically complements
//!   the counting-allocator proof in `crates/core/tests/zero_alloc.rs`).
//! * [`rules::Rule::UndocumentedUnsafe`] — every `unsafe` carries a
//!   `SAFETY` justification, and every `#[target_feature]` kernel is
//!   only reached from an `is_x86_feature_detected!`-guarded scope or
//!   another kernel.
//! * [`rules::Rule::AtomicOrdering`] — every atomic `Ordering::` choice
//!   carries an `// ORDERING:` justification (the worker-pool claim
//!   cursors are load-bearing for report determinism).
//! * [`rules::Rule::Determinism`] — no `HashMap`/`HashSet`, wall-clock
//!   reads, or RNG construction outside the seeded
//!   `bist_mc::batch::stream_rng` seam in the report-producing crates
//!   (core/dsp/rtl/mc library sources).
//!
//! Diagnostics are machine-readable flat JSON (the same record shape
//! `perf_gate` diffs — see [`report::render_json`]) and suppressible
//! only via inline `// bist-lint: allow(<rule>) — <reason>` markers.
//! The analyzer runs against the live workspace as a tier-1 test
//! (`tests/workspace_clean.rs`) and as the dedicated `static-analysis`
//! CI job (the `bist-lint` binary).
//!
//! Zero dependencies by design: the container is hermetic, and the
//! checker that gates everything else must itself build first.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod structure;
pub mod workspace;

pub use rules::{analyze_file, collect_kernels, Diagnostic, FileContext, Rule};
pub use workspace::{analyze_workspace, context_for, find_workspace_root, Analysis};
