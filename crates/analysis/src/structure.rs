//! Structural index over a lexed file: function spans, `#[cfg(test)]`
//! regions, hot-path regions and `bist-lint:` markers.
//!
//! Everything here is line-granular and brace-counted over the *code*
//! channel only, so braces in strings or comments never derail a span.

use crate::lexer::{is_ident_char, LexedLine};

/// A function item: its name, signature line and body extent
/// (inclusive, 0-based line indices).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 0-based line of the body's opening brace.
    pub body_start: usize,
    /// 0-based line of the body's closing brace.
    pub body_end: usize,
    /// Whether a `#[target_feature(...)]` attribute precedes it.
    pub target_feature: bool,
}

/// A `// bist-lint: hot-path` region: the next function item after the
/// marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotRegion {
    /// Name of the marked function.
    pub fn_name: String,
    /// 0-based first line of the region (the marker line).
    pub start: usize,
    /// 0-based last line of the region (the body's closing brace).
    pub end: usize,
}

/// An inline `// bist-lint: allow(<rule>) — <reason>` marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowMarker {
    /// 0-based line the marker sits on.
    pub line: usize,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// Whether a non-empty reason follows the closing parenthesis.
    pub has_reason: bool,
}

/// The structural index of one file.
#[derive(Debug, Default)]
pub struct Structure {
    /// Every function item found, in source order.
    pub fns: Vec<FnSpan>,
    /// Inclusive line ranges covered by a `#[cfg(test)]` item.
    pub cfg_test: Vec<(usize, usize)>,
    /// Hot-path regions, in source order.
    pub hot_regions: Vec<HotRegion>,
    /// Allow markers, in source order.
    pub allows: Vec<AllowMarker>,
}

impl Structure {
    /// Builds the index for a lexed file.
    pub fn build(lines: &[LexedLine]) -> Self {
        let mut s = Structure {
            fns: find_fns(lines),
            cfg_test: Vec::new(),
            hot_regions: Vec::new(),
            allows: Vec::new(),
        };
        for (i, line) in lines.iter().enumerate() {
            if line.code.contains("#[cfg(test)]") {
                if let Some((open, close)) = brace_span_from(lines, i) {
                    s.cfg_test.push((i.min(open), close));
                }
            }
            if let Some(rest) = marker_payload(&line.comment, "hot-path") {
                // The region is the next fn item; `rest` may carry an
                // optional free-text label after the marker.
                let _ = rest;
                if let Some(f) = s.fns.iter().find(|f| f.sig_line >= i) {
                    s.hot_regions.push(HotRegion {
                        fn_name: f.name.clone(),
                        start: i,
                        end: f.body_end,
                    });
                }
            }
            if let Some(rest) = marker_payload(&line.comment, "allow(") {
                if let Some(close) = rest.find(')') {
                    let rule = rest[..close].trim().to_owned();
                    let tail = rest[close + 1..].trim();
                    // A reason must follow a dash/colon separator —
                    // "allow(x)" alone is not a justification.
                    let has_reason = tail
                        .strip_prefix('—')
                        .or_else(|| tail.strip_prefix('-'))
                        .or_else(|| tail.strip_prefix(':'))
                        .is_some_and(|r| !r.trim().is_empty());
                    s.allows.push(AllowMarker {
                        line: i,
                        rule,
                        has_reason,
                    });
                }
            }
        }
        s
    }

    /// Whether the 0-based line sits inside a `#[cfg(test)]` item.
    pub fn in_cfg_test(&self, line: usize) -> bool {
        self.cfg_test.iter().any(|&(a, b)| line >= a && line <= b)
    }

    /// The innermost function whose body contains the 0-based line.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body_start <= line && line <= f.body_end)
            .max_by_key(|f| f.body_start)
    }

    /// Whether rule `rule` is suppressed at the 0-based line: a
    /// well-formed allow marker on the same line or the line above.
    pub fn allowed_at(&self, line: usize, rule: &str) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.has_reason && (a.line == line || a.line + 1 == line))
    }
}

/// Extracts the payload after a `bist-lint: <key>` marker in comment
/// text, or `None` when the marker is absent.
///
/// A marker must *start* its comment as a plain `// bist-lint:` line
/// comment — doc comments (`///`, `//!`) and prose that merely quotes
/// the syntax never register as markers.
fn marker_payload<'a>(comment: &'a str, key: &str) -> Option<&'a str> {
    let at = comment.find("bist-lint:")?;
    if comment[..at].trim() != "//" {
        return None;
    }
    let rest = comment[at + "bist-lint:".len()..].trim_start();
    rest.strip_prefix(key)
}

/// Finds every function item by scanning for `fn <ident>` in the code
/// channel and brace-matching its body.
fn find_fns(lines: &[LexedLine]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        let mut from = 0;
        while let Some(rel) = code[from..].find("fn ") {
            let at = from + rel;
            from = at + 3;
            // Word boundary on the left ("fn" must not be an ident tail).
            if at > 0 && is_ident_char(code[..at].chars().next_back().unwrap_or(' ')) {
                continue;
            }
            let name: String = code[at + 3..]
                .trim_start()
                .chars()
                .take_while(|&c| is_ident_char(c))
                .collect();
            if name.is_empty() {
                continue;
            }
            // The body opens at the first `{` at bracket-depth 0 before
            // any `;` (a `;` first means a bodiless declaration).
            let Some((open_line, open_col)) = find_body_open(lines, i, at + 3) else {
                continue;
            };
            let Some(close_line) = match_brace(lines, open_line, open_col) else {
                continue;
            };
            fns.push(FnSpan {
                name,
                sig_line: i,
                body_start: open_line,
                body_end: close_line,
                target_feature: has_target_feature(lines, i),
            });
        }
    }
    fns
}

/// Whether the contiguous attribute/comment block above `sig_line`
/// carries `#[target_feature`.
fn has_target_feature(lines: &[LexedLine], sig_line: usize) -> bool {
    // The attribute may share the signature's line range upward through
    // attributes and doc comments.
    let mut i = sig_line;
    loop {
        if lines[i].code.contains("#[target_feature") {
            return true;
        }
        if i == 0 {
            return false;
        }
        let above = &lines[i - 1];
        if above.is_attr() || above.is_code_blank() && !above.comment.is_empty() {
            i -= 1;
        } else {
            return false;
        }
    }
}

/// From `(line, col)` scan for the body's opening `{` at
/// square-bracket/paren depth 0, stopping at a top-level `;`.
fn find_body_open(lines: &[LexedLine], line: usize, col: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    for (li, l) in lines.iter().enumerate().skip(line) {
        let start = if li == line { col } else { 0 };
        for (ci, c) in l.code.char_indices() {
            if ci < start {
                continue;
            }
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => return Some((li, ci)),
                ';' if depth == 0 => return None,
                _ => {}
            }
        }
    }
    None
}

/// Line of the `}` matching the `{` at `(line, col)`.
fn match_brace(lines: &[LexedLine], line: usize, col: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (li, l) in lines.iter().enumerate().skip(line) {
        for (ci, c) in l.code.char_indices() {
            if li == line && ci < col {
                continue;
            }
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(li);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// First `{` at or after `line`, brace-matched to its close — used for
/// `#[cfg(test)]` item extents.
fn brace_span_from(lines: &[LexedLine], line: usize) -> Option<(usize, usize)> {
    for (li, l) in lines.iter().enumerate().skip(line) {
        if let Some(ci) = l.code.find('{') {
            return match_brace(lines, li, ci).map(|close| (li, close));
        }
        // A `;` before any `{` ends the item without a body.
        if l.code.contains(';') {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fn_spans_and_enclosing() {
        let src = "fn outer() {\n    let x = 1;\n}\n\npub fn next(a: [u8; 4]) -> u32 {\n    0\n}\n";
        let s = Structure::build(&lex(src));
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].name, "outer");
        assert_eq!((s.fns[0].body_start, s.fns[0].body_end), (0, 2));
        assert_eq!(s.fns[1].name, "next");
        assert_eq!(s.enclosing_fn(1).unwrap().name, "outer");
        assert_eq!(s.enclosing_fn(5).unwrap().name, "next");
        assert!(s.enclosing_fn(3).is_none());
    }

    #[test]
    fn bodiless_decls_are_skipped() {
        let s = Structure::build(&lex("trait T {\n    fn decl(&self) -> u8;\n    fn with(&self) -> u8 {\n        1\n    }\n}\n"));
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["with"]);
    }

    #[test]
    fn cfg_test_region_covers_mod() {
        let src = "fn live() {}\n\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let s = Structure::build(&lex(src));
        assert!(!s.in_cfg_test(0));
        assert!(s.in_cfg_test(2));
        assert!(s.in_cfg_test(4));
        assert!(s.in_cfg_test(5));
    }

    #[test]
    fn hot_region_attaches_to_next_fn() {
        let src =
            "// bist-lint: hot-path\n#[inline]\nfn hot(x: f64) -> f64 {\n    x\n}\nfn cold() {}\n";
        let s = Structure::build(&lex(src));
        assert_eq!(s.hot_regions.len(), 1);
        let r = &s.hot_regions[0];
        assert_eq!(r.fn_name, "hot");
        assert_eq!((r.start, r.end), (0, 4));
    }

    #[test]
    fn allow_markers_need_reasons() {
        let src = "let a = 1; // bist-lint: allow(determinism) — timing metadata\nlet b = 2; // bist-lint: allow(determinism)\n";
        let s = Structure::build(&lex(src));
        assert_eq!(s.allows.len(), 2);
        assert!(s.allows[0].has_reason);
        assert!(!s.allows[1].has_reason);
        assert!(s.allowed_at(0, "determinism"));
        assert!(s.allowed_at(1, "determinism"), "line-above marker applies");
        assert!(
            !s.allowed_at(2, "determinism"),
            "bare marker never suppresses"
        );
    }

    #[test]
    fn target_feature_detected_through_attrs() {
        let src = "#[cfg(target_arch = \"x86_64\")]\n#[target_feature(enable = \"avx2\")]\nunsafe fn kern() {\n}\n";
        let s = Structure::build(&lex(src));
        assert_eq!(s.fns.len(), 1);
        assert!(s.fns[0].target_feature);
    }
}
