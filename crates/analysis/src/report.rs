//! Machine-readable report rendering: the same flat-JSON record shape
//! the `perf_gate` binary diffs (`"metrics"` is a flat object of
//! numeric gauges — parseable by `bist_bench::record_metrics`), plus a
//! `diagnostics` array for tooling.

use crate::rules::Rule;
use crate::workspace::Analysis;

/// Minimal JSON string escaping for messages and paths.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the analysis as a flat-JSON perf-record-shaped report.
///
/// Layout mirrors the `Scenario` records under `bench/out/`: a
/// `"scenario"` name, a flat `"metrics"` object (every value numeric —
/// the part `perf_gate` can diff), then the diagnostics array.
pub fn render_json(a: &Analysis) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"scenario\": \"bist_lint\",\n  \"metrics\": {\n");
    s.push_str(&format!("    \"violations\": {},\n", a.diagnostics.len()));
    for rule in Rule::ALL {
        s.push_str(&format!(
            "    \"violations_{}\": {},\n",
            rule.name().replace('-', "_"),
            a.count(rule)
        ));
    }
    s.push_str(&format!("    \"files_scanned\": {},\n", a.files_scanned));
    s.push_str(&format!(
        "    \"hot_path_regions\": {},\n",
        a.stats.hot_regions
    ));
    s.push_str(&format!(
        "    \"allow_markers\": {},\n",
        a.stats.allow_markers
    ));
    s.push_str(&format!(
        "    \"unsafe_sites\": {},\n",
        a.stats.unsafe_sites
    ));
    s.push_str(&format!(
        "    \"ordering_sites\": {},\n",
        a.stats.ordering_sites
    ));
    s.push_str(&format!(
        "    \"target_feature_kernels\": {},\n",
        a.kernels.len()
    ));
    s.push_str(&format!(
        "    \"target_feature_call_sites\": {}\n",
        a.stats.kernel_calls
    ));
    s.push_str("  },\n  \"diagnostics\": [");
    for (i, d) in a.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            d.rule,
            esc(&d.file),
            d.line,
            esc(&d.message)
        ));
    }
    if !a.diagnostics.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    #[test]
    fn clean_report_is_flat_and_zero() {
        let a = Analysis {
            files_scanned: 3,
            ..Analysis::default()
        };
        let json = render_json(&a);
        assert!(json.contains("\"violations\": 0"));
        assert!(json.contains("\"violations_hot_path_alloc\": 0"));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"diagnostics\": []"));
    }

    #[test]
    fn diagnostics_render_with_escapes() {
        let mut a = Analysis::default();
        a.diagnostics.push(Diagnostic {
            file: "a.rs".into(),
            line: 7,
            rule: Rule::Determinism,
            message: "uses \"quotes\"".into(),
        });
        let json = render_json(&a);
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"violations_determinism\": 1"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"line\": 7"));
    }
}
