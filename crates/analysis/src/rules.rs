//! The four rule families of `bist-lint`, each the static shadow of a
//! runtime gate the workspace already enforces dynamically:
//!
//! | rule | statically proves | runtime gate it shadows |
//! |---|---|---|
//! | `hot-path-alloc` | no allocating constructs in marked hot paths | counting-allocator proof (`crates/core/tests/zero_alloc.rs`) |
//! | `undocumented-unsafe` | every `unsafe` justified; `#[target_feature]` kernels only reached behind runtime detection | UB has no runtime gate — this is the only net |
//! | `atomic-ordering` | every atomic `Ordering::` choice justified | worker-count `report_checksum` equality gate |
//! | `determinism` | no wall clocks, hash iteration or stray RNGs in report-producing crates | bit-identical fleet reports for any workers × lanes × chunk |
//!
//! Diagnostics are suppressible only via an inline
//! `// bist-lint: allow(<rule>) — <reason>` marker (same line or the
//! line above); a marker without a reason suppresses nothing.

use crate::lexer::{is_ident_char, lex, LexedLine};
use crate::structure::Structure;
use std::collections::BTreeSet;
use std::fmt;

/// The rule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Allocating constructs inside a `// bist-lint: hot-path` region.
    HotPathAlloc,
    /// `unsafe` without a SAFETY justification, or a `#[target_feature]`
    /// kernel reached outside a feature-detected scope.
    UndocumentedUnsafe,
    /// Atomic `Ordering::` without an `// ORDERING:` justification.
    AtomicOrdering,
    /// Nondeterminism seams in report-producing crates.
    Determinism,
}

impl Rule {
    /// The rule's marker name, as written in `allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::Determinism => "determinism",
        }
    }

    /// All rules, in report order.
    pub const ALL: [Rule; 4] = [
        Rule::HotPathAlloc,
        Rule::UndocumentedUnsafe,
        Rule::AtomicOrdering,
        Rule::Determinism,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable finding.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Where a file sits in the workspace — drives per-rule scoping.
#[derive(Debug, Clone, Default)]
pub struct FileContext {
    /// Workspace-relative display path.
    pub path: String,
    /// Library source of a report-producing crate (core/dsp/rtl/mc):
    /// the `determinism` rule applies.
    pub report_crate: bool,
    /// Test/example/bench code: `atomic-ordering` and `determinism`
    /// do not apply (timing and ad-hoc seeding are legitimate there);
    /// `unsafe` hygiene still does.
    pub test_code: bool,
    /// A designated seeded-RNG seam module
    /// (`crates/core/src/source.rs`, home of `stream_rng`, or its
    /// re-exporting historical path `crates/mc/src/batch.rs`): RNG
    /// construction is its job, so the RNG-construction check is
    /// waived — every other determinism check still applies.
    pub rng_seam: bool,
}

/// Per-file tallies folded into the workspace report.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileStats {
    /// Hot-path regions found.
    pub hot_regions: usize,
    /// Well-formed allow markers found.
    pub allow_markers: usize,
    /// `unsafe` sites inspected.
    pub unsafe_sites: usize,
    /// Atomic `Ordering::` sites inspected.
    pub ordering_sites: usize,
    /// `#[target_feature]` kernel call sites inspected.
    pub kernel_calls: usize,
}

/// Allocating constructs forbidden in hot-path regions: each is a
/// `(needle, bound_start)` pair — `bound_start` demands an identifier
/// boundary before the needle (macros and method tails carry their own
/// sigil).
const ALLOC_TOKENS: &[(&str, bool)] = &[
    ("Vec::new", true),
    ("vec!", true),
    ("with_capacity", true),
    (".collect", false),
    ("to_vec", true),
    ("format!", true),
    ("Box::new", true),
    ("String::new", true),
    ("String::from", true),
    ("to_string", true),
    ("to_owned", true),
];

/// Atomic ordering variants (distinguishes `atomic::Ordering` from
/// `cmp::Ordering`, whose variants are `Less`/`Equal`/`Greater`).
const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// RNG constructors that bypass the seeded `stream_rng` seam.
const RNG_TOKENS: &[&str] = &[
    "seed_from_u64",
    "from_seed",
    "from_entropy",
    "from_os_rng",
    "thread_rng",
];

/// Collects the names of `#[target_feature]` functions declared in a
/// file — pass 1 of the workspace analysis, so call sites in *other*
/// files are checked too.
pub fn collect_kernels(src: &str) -> Vec<String> {
    let lines = lex(src);
    Structure::build(&lines)
        .fns
        .iter()
        .filter(|f| f.target_feature)
        .map(|f| f.name.clone())
        .collect()
}

/// Analyzes one file under `ctx` against every rule, returning the
/// findings and tallies. `kernels` is the workspace-wide set of
/// `#[target_feature]` function names from [`collect_kernels`].
pub fn analyze_file(
    src: &str,
    ctx: &FileContext,
    kernels: &BTreeSet<String>,
) -> (Vec<Diagnostic>, FileStats) {
    let lines = lex(src);
    let st = Structure::build(&lines);
    let mut out = Vec::new();
    let mut stats = FileStats {
        hot_regions: st.hot_regions.len(),
        allow_markers: st.allows.iter().filter(|a| a.has_reason).count(),
        ..FileStats::default()
    };

    check_hot_path_alloc(&lines, &st, ctx, &mut out);
    check_unsafe(&lines, &st, ctx, &mut out, &mut stats);
    check_kernel_calls(&lines, &st, ctx, kernels, &mut out, &mut stats);
    check_atomic_ordering(&lines, &st, ctx, &mut out, &mut stats);
    check_determinism(&lines, &st, ctx, &mut out);

    out.sort();
    (out, stats)
}

/// Pushes `diag` unless an allow marker suppresses it.
fn emit(
    st: &Structure,
    ctx: &FileContext,
    out: &mut Vec<Diagnostic>,
    line: usize,
    rule: Rule,
    message: String,
) {
    if !st.allowed_at(line, rule.name()) {
        out.push(Diagnostic {
            file: ctx.path.clone(),
            line: line + 1,
            rule,
            message,
        });
    }
}

/// Token search with identifier boundaries on both sides.
fn token_positions(code: &str, needle: &str, bound_start: bool) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(needle) {
        let at = from + rel;
        from = at + needle.len();
        if bound_start {
            if let Some(prev) = code[..at].chars().next_back() {
                if is_ident_char(prev) {
                    continue;
                }
            }
        }
        let next = code[at + needle.len()..].chars().next();
        if next.is_some_and(is_ident_char) {
            continue;
        }
        hits.push(at);
    }
    hits
}

fn has_token(code: &str, needle: &str, bound_start: bool) -> bool {
    !token_positions(code, needle, bound_start).is_empty()
}

// ---------------------------------------------------------------------
// Rule 1: hot-path-alloc
// ---------------------------------------------------------------------

fn check_hot_path_alloc(
    lines: &[LexedLine],
    st: &Structure,
    ctx: &FileContext,
    out: &mut Vec<Diagnostic>,
) {
    for region in &st.hot_regions {
        let span = &lines[region.start..=region.end.min(lines.len().saturating_sub(1))];
        for (off, line) in span.iter().enumerate() {
            let li = region.start + off;
            for &(needle, bound) in ALLOC_TOKENS {
                for _ in token_positions(&line.code, needle, bound) {
                    emit(
                        st,
                        ctx,
                        out,
                        li,
                        Rule::HotPathAlloc,
                        format!(
                            "allocating construct `{needle}` in hot-path region `{}`",
                            region.fn_name
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 2: undocumented-unsafe (+ target_feature reachability)
// ---------------------------------------------------------------------

/// Whether the contiguous comment/attribute block ending at `line`
/// (inclusive) carries a SAFETY justification (`SAFETY:` in a comment,
/// or a `# Safety` doc heading).
fn safety_documented(lines: &[LexedLine], line: usize) -> bool {
    let justifies =
        |c: &str| c.contains("SAFETY:") || c.contains("Safety:") || c.contains("# Safety");
    if justifies(&lines[line].comment) {
        return true;
    }
    let mut i = line;
    while i > 0 {
        let above = &lines[i - 1];
        let comment_only = above.is_code_blank() && !above.comment.is_empty();
        if comment_only || above.is_attr() {
            if justifies(&above.comment) {
                return true;
            }
            i -= 1;
        } else {
            break;
        }
    }
    false
}

fn check_unsafe(
    lines: &[LexedLine],
    st: &Structure,
    ctx: &FileContext,
    out: &mut Vec<Diagnostic>,
    stats: &mut FileStats,
) {
    for (li, line) in lines.iter().enumerate() {
        if line.is_attr() || !has_token(&line.code, "unsafe", true) {
            continue;
        }
        stats.unsafe_sites += 1;
        if !safety_documented(lines, li) {
            emit(
                st,
                ctx,
                out,
                li,
                Rule::UndocumentedUnsafe,
                "`unsafe` without a `// SAFETY:` justification (or `# Safety` doc section)"
                    .to_owned(),
            );
        }
    }
}

fn check_kernel_calls(
    lines: &[LexedLine],
    st: &Structure,
    ctx: &FileContext,
    kernels: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
    stats: &mut FileStats,
) {
    if kernels.is_empty() {
        return;
    }
    for (li, line) in lines.iter().enumerate() {
        for kernel in kernels {
            for at in token_positions(&line.code, kernel, true) {
                // The definition itself is not a call site.
                if line.code[..at].trim_end().ends_with("fn") {
                    continue;
                }
                // Neither is a mention without invocation parentheses.
                if !line.code[at + kernel.len()..].trim_start().starts_with('(') {
                    continue;
                }
                stats.kernel_calls += 1;
                let guarded = match st.enclosing_fn(li) {
                    // A kernel may call (or tail into) another kernel:
                    // the feature set is already enabled.
                    Some(f) if f.target_feature => true,
                    // Otherwise the enclosing function must have
                    // detected the features before this call.
                    Some(f) => (f.body_start..=li)
                        .any(|i| lines[i].code.contains("is_x86_feature_detected!")),
                    None => false,
                };
                if !guarded {
                    emit(
                        st,
                        ctx,
                        out,
                        li,
                        Rule::UndocumentedUnsafe,
                        format!(
                            "call to `#[target_feature]` fn `{kernel}` outside an \
                             `is_x86_feature_detected!`-guarded scope"
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 3: atomic-ordering
// ---------------------------------------------------------------------

/// Whether the contiguous comment block at/above `line` carries an
/// `ORDERING:` justification.
fn ordering_documented(lines: &[LexedLine], line: usize) -> bool {
    if lines[line].comment.contains("ORDERING:") {
        return true;
    }
    let mut i = line;
    while i > 0 {
        let above = &lines[i - 1];
        let comment_only = above.is_code_blank() && !above.comment.is_empty();
        if comment_only || above.is_attr() {
            if above.comment.contains("ORDERING:") {
                return true;
            }
            i -= 1;
        } else {
            break;
        }
    }
    false
}

fn check_atomic_ordering(
    lines: &[LexedLine],
    st: &Structure,
    ctx: &FileContext,
    out: &mut Vec<Diagnostic>,
    stats: &mut FileStats,
) {
    if ctx.test_code {
        return;
    }
    for (li, line) in lines.iter().enumerate() {
        if st.in_cfg_test(li) {
            continue;
        }
        for &variant in ATOMIC_ORDERINGS {
            if has_token(&line.code, variant, true) {
                stats.ordering_sites += 1;
                if !ordering_documented(lines, li) {
                    emit(
                        st,
                        ctx,
                        out,
                        li,
                        Rule::AtomicOrdering,
                        format!("`{variant}` without an adjacent `// ORDERING:` justification"),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 4: determinism
// ---------------------------------------------------------------------

fn check_determinism(
    lines: &[LexedLine],
    st: &Structure,
    ctx: &FileContext,
    out: &mut Vec<Diagnostic>,
) {
    if !ctx.report_crate || ctx.test_code {
        return;
    }
    for (li, line) in lines.iter().enumerate() {
        if st.in_cfg_test(li) {
            continue;
        }
        // Imports alone don't perturb a report; construction and
        // iteration sites do, and those need the type name too — so
        // skipping `use` lines loses nothing but noise.
        if line.code.trim_start().starts_with("use ") {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            if has_token(&line.code, ty, true) {
                emit(
                    st,
                    ctx,
                    out,
                    li,
                    Rule::Determinism,
                    format!(
                        "`{ty}` in a report-producing crate: iteration order is \
                         nondeterministic — use `BTreeMap`/`BTreeSet` or an index keyed by \
                         device"
                    ),
                );
            }
        }
        for clock in ["Instant::now", "SystemTime"] {
            if has_token(&line.code, clock, true) {
                emit(
                    st,
                    ctx,
                    out,
                    li,
                    Rule::Determinism,
                    format!(
                        "`{clock}` in a report-producing crate: wall-clock reads may not \
                         influence report contents"
                    ),
                );
            }
        }
        if !ctx.rng_seam {
            for rng in RNG_TOKENS {
                if has_token(&line.code, rng, true) {
                    emit(
                        st,
                        ctx,
                        out,
                        li,
                        Rule::Determinism,
                        format!(
                            "`{rng}` constructs an RNG outside the seeded `stream_rng` seam \
                             (`bist_core::source::stream_rng`)"
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FileContext {
        FileContext {
            path: "test.rs".into(),
            report_crate: true,
            test_code: false,
            rng_seam: false,
        }
    }

    fn run(src: &str, ctx: &FileContext) -> Vec<Diagnostic> {
        analyze_file(src, ctx, &BTreeSet::new()).0
    }

    #[test]
    fn token_boundaries_hold() {
        assert!(has_token("let x = Vec::new();", "Vec::new", true));
        assert!(!has_token("let x = MyVec::newish();", "Vec::new", true));
        assert!(!has_token("fn recollect() {}", ".collect", false));
        assert!(has_token("it.collect::<Vec<_>>()", ".collect", false));
    }

    #[test]
    fn cfg_test_rng_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn r() {\n        let _ = StdRng::seed_from_u64(1);\n    }\n}\n";
        assert!(run(src, &ctx()).is_empty());
    }

    #[test]
    fn live_rng_fires() {
        let src = "fn r() {\n    let _ = StdRng::seed_from_u64(1);\n}\n";
        let d = run(src, &ctx());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::Determinism);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn non_report_crate_is_out_of_scope() {
        let src = "fn r() {\n    let _ = StdRng::seed_from_u64(1);\n}\n";
        let mut c = ctx();
        c.report_crate = false;
        assert!(run(src, &c).is_empty());
    }

    #[test]
    fn cmp_ordering_is_not_atomic_ordering() {
        let src = "fn f(a: u32, b: u32) -> std::cmp::Ordering {\n    a.cmp(&b)\n}\n";
        assert!(run(src, &ctx()).is_empty());
    }
}
