//! Fixture: atomic orderings without justification must fire.

use std::sync::atomic::{AtomicUsize, Ordering};

fn claim(cursor: &AtomicUsize) -> usize {
    cursor.fetch_add(1, Ordering::Relaxed)
}

fn publish(flag: &AtomicUsize) {
    flag.store(1, Ordering::SeqCst);
}
