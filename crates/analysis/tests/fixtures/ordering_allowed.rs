//! Fixture: `ORDERING:` comments and allow markers satisfy the rule.

use std::sync::atomic::{AtomicUsize, Ordering};

fn claim(cursor: &AtomicUsize) -> usize {
    // ORDERING: Relaxed suffices — fetch_add atomicity alone hands out
    // distinct indices; nothing synchronises through this cursor.
    cursor.fetch_add(1, Ordering::Relaxed)
}

fn publish(flag: &AtomicUsize) {
    // bist-lint: allow(atomic-ordering) — fixture demonstrating suppression
    flag.store(1, Ordering::SeqCst);
}
