//! Fixture: allocating constructs inside a hot-path region must fire.

// bist-lint: hot-path — fixture region
fn hot_lane(samples: &[f64]) -> f64 {
    let copies = samples.to_vec();
    let mut acc = Vec::new();
    acc.push(copies.iter().sum::<f64>());
    let label = format!("{acc:?}");
    label.len() as f64
}

fn cold_path() -> Vec<f64> {
    Vec::new()
}
