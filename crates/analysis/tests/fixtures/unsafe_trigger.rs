//! Fixture: undocumented `unsafe` and unguarded kernel calls must fire.

#[target_feature(enable = "avx2")]
unsafe fn kernel(x: f64) -> f64 {
    x
}

fn caller(x: f64) -> f64 {
    unsafe { kernel(x) }
}
