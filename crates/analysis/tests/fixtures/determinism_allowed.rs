//! Fixture: allow markers and `#[cfg(test)]` regions scope the rule.

fn elapsed_metadata() -> std::time::Duration {
    // bist-lint: allow(determinism) — wall-clock is throughput metadata only
    let start = Instant::now();
    start.elapsed()
}

#[cfg(test)]
mod tests {
    #[test]
    fn seeding_in_tests_is_fine() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = rng.next_u64();
    }
}
