//! Fixture: SAFETY comments, detection guards and allow markers satisfy
//! the rule.

/// # Safety
///
/// Caller must have detected `avx2` at runtime.
#[target_feature(enable = "avx2")]
unsafe fn kernel(x: f64) -> f64 {
    x
}

fn caller(x: f64) -> f64 {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: avx2 detected at runtime just above.
        unsafe { kernel(x) }
    } else {
        x
    }
}

fn escape_hatch(x: f64) -> f64 {
    // bist-lint: allow(undocumented-unsafe) — fixture demonstrating suppression
    unsafe { kernel(x) }
}
