//! Fixture: an allow marker with a reason suppresses a hot-path finding.

// bist-lint: hot-path — fixture region
fn hot_lane(samples: &[f64]) -> usize {
    // bist-lint: allow(hot-path-alloc) — one-time setup before the loop
    let staged = samples.to_vec();
    staged.len()
}
