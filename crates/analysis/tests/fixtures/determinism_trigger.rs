//! Fixture: nondeterminism seams in a report-producing crate must fire.

use std::collections::HashMap;
use std::time::Instant;

fn tally(keys: &[u32]) -> usize {
    let mut seen: HashMap<u32, usize> = HashMap::new();
    for &k in keys {
        *seen.entry(k).or_insert(0) += 1;
    }
    seen.len()
}

fn stamp() -> std::time::Duration {
    Instant::now().elapsed()
}

fn reseed() -> u64 {
    let mut rng = StdRng::seed_from_u64(0xB157);
    rng.next_u64()
}
