//! The live-workspace gate: `bist-lint` must report zero violations on
//! this repository, and deleting any of the justifications it guards —
//! a `SAFETY:` comment, an `ORDERING:` comment, an allow marker — or
//! inserting an allocation into a hot path must surface a diagnostic.
//! Because this file runs under `cargo test` (tier 1) and the dedicated
//! CI job, those mutations fail CI.

use bist_analysis::{
    analyze_file, analyze_workspace, collect_kernels, context_for, find_workspace_root, Diagnostic,
    Rule,
};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn root() -> PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

/// Reads a real workspace file, applies `mutate`, and re-analyzes it
/// under its real path context — the in-memory version of editing the
/// file and re-running `bist-lint`.
fn analyze_mutated(rel: &str, mutate: impl Fn(&str) -> String) -> Vec<Diagnostic> {
    let src = fs::read_to_string(root().join(rel)).expect(rel);
    let mutated = mutate(&src);
    assert_ne!(src, mutated, "mutation must change {rel}");
    let kernels: BTreeSet<String> = collect_kernels(&mutated).into_iter().collect();
    analyze_file(&mutated, &context_for(rel), &kernels).0
}

#[test]
fn live_workspace_is_clean() {
    let analysis = analyze_workspace(&root()).expect("workspace scan");
    assert_eq!(
        analysis.diagnostics,
        [],
        "the workspace must satisfy every bist-lint rule"
    );
    // The inventory the rules guard must actually exist — a walker
    // regression that skipped the engine sources would also report
    // "clean". Lower bounds, not equalities: future PRs add sites.
    assert!(
        analysis.files_scanned >= 100,
        "walker must see the workspace"
    );
    assert!(
        analysis.stats.hot_regions >= 10,
        "lane loops, pool drains, checkpoints and Goertzel push are marked"
    );
    assert!(analysis.stats.allow_markers >= 4);
    assert!(
        analysis.stats.ordering_sites >= 2,
        "pool + parallel cursors"
    );
    assert!(analysis.stats.unsafe_sites >= 2, "fma kernel + call site");
    assert!(
        analysis.kernels.contains("pair_kernel_fma"),
        "pass 1 must find the #[target_feature] kernel"
    );
    assert_eq!(analysis.stats.kernel_calls, 1, "one guarded fma dispatch");
}

#[test]
fn json_report_parses_with_the_perf_gate_reader() {
    let analysis = analyze_workspace(&root()).expect("workspace scan");
    let json = bist_analysis::report::render_json(&analysis);
    let metrics = bist_bench::record_metrics(&json);
    let get = |k: &str| {
        metrics
            .iter()
            .find(|(key, _)| key == k)
            .unwrap_or_else(|| panic!("metric {k} missing"))
            .1
    };
    assert_eq!(get("violations"), 0.0);
    assert_eq!(get("files_scanned"), analysis.files_scanned as f64);
    assert_eq!(get("hot_path_regions"), analysis.stats.hot_regions as f64);
    for rule in Rule::ALL {
        let key = format!("violations_{}", rule.name().replace('-', "_"));
        assert_eq!(get(&key), 0.0, "{key}");
    }
}

#[test]
fn stripping_an_ordering_comment_fires() {
    for rel in ["crates/core/src/pool.rs", "crates/mc/src/parallel.rs"] {
        let diags = analyze_mutated(rel, |s| s.replace("ORDERING:", "NOTE:"));
        assert!(
            diags.iter().any(|d| d.rule == Rule::AtomicOrdering),
            "{rel}: deleting the ORDERING justification must fire, got {diags:?}"
        );
    }
}

#[test]
fn stripping_a_safety_comment_fires() {
    let diags = analyze_mutated("crates/core/src/batch.rs", |s| {
        s.replace("SAFETY", "DETAIL").replace("Safety", "Detail")
    });
    let unsafe_diags: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::UndocumentedUnsafe)
        .collect();
    assert!(
        unsafe_diags.len() >= 2,
        "both the fma kernel's # Safety section and the call-site SAFETY \
         comment must be load-bearing, got {diags:?}"
    );
}

#[test]
fn inserting_an_allocation_into_a_hot_path_fires() {
    let diags = analyze_mutated("crates/core/src/batch.rs", |s| {
        // Drop a Vec::new into the body of the first hot-path region.
        let lines: Vec<&str> = s.lines().collect();
        let marker = lines
            .iter()
            .position(|l| l.trim_start().starts_with("// bist-lint: hot-path"))
            .expect("batch.rs declares hot-path regions");
        let open = (marker..lines.len())
            .find(|&i| lines[i].trim_end().ends_with('{'))
            .expect("region fn opens a body");
        let mut out: Vec<String> = lines.iter().map(|l| (*l).to_owned()).collect();
        out.insert(
            open + 1,
            "        let _scratch: Vec<u64> = Vec::new();".to_owned(),
        );
        out.join("\n")
    });
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::HotPathAlloc && d.message.contains("`Vec::new`")),
        "an allocation smuggled into a hot path must fire, got {diags:?}"
    );
}

#[test]
fn removing_an_allow_marker_fires() {
    let diags = analyze_mutated("crates/mc/src/parallel.rs", |s| {
        s.lines()
            .filter(|l| !l.contains("bist-lint: allow(determinism)"))
            .collect::<Vec<_>>()
            .join("\n")
    });
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::Determinism && d.message.contains("Instant::now")),
        "the wall-clock read is only legal under its marker, got {diags:?}"
    );
}
