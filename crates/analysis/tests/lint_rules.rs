//! Golden-fixture tests: each rule family has a trigger fixture whose
//! exact diagnostics (rule, line, message) are pinned, and an allowed
//! fixture proving the documented escape hatches — SAFETY/ORDERING
//! comments, detection guards, `#[cfg(test)]` scoping and inline
//! `// bist-lint: allow(...)` markers — suppress cleanly.

use bist_analysis::{analyze_file, collect_kernels, Diagnostic, FileContext, Rule};
use std::collections::BTreeSet;

fn report_ctx(path: &str) -> FileContext {
    FileContext {
        path: path.to_owned(),
        report_crate: true,
        test_code: false,
        rng_seam: false,
    }
}

/// Runs a fixture with its own `#[target_feature]` fns as the kernel
/// set, mirroring the workspace two-pass analysis.
fn run(src: &str, ctx: &FileContext) -> Vec<Diagnostic> {
    let kernels: BTreeSet<String> = collect_kernels(src).into_iter().collect();
    analyze_file(src, ctx, &kernels).0
}

fn flat(diags: &[Diagnostic]) -> Vec<(Rule, usize, &str)> {
    diags
        .iter()
        .map(|d| (d.rule, d.line, d.message.as_str()))
        .collect()
}

#[test]
fn hot_path_alloc_fires_inside_region_only() {
    let src = include_str!("fixtures/hot_alloc_trigger.rs");
    let diags = run(src, &report_ctx("fixtures/hot_alloc_trigger.rs"));
    assert_eq!(
        flat(&diags),
        [
            (
                Rule::HotPathAlloc,
                5,
                "allocating construct `to_vec` in hot-path region `hot_lane`",
            ),
            (
                Rule::HotPathAlloc,
                6,
                "allocating construct `Vec::new` in hot-path region `hot_lane`",
            ),
            (
                Rule::HotPathAlloc,
                8,
                "allocating construct `format!` in hot-path region `hot_lane`",
            ),
        ],
        "cold_path's Vec::new (line 13) must NOT fire — it is outside the region"
    );
}

#[test]
fn hot_path_alloc_suppressed_by_allow_marker() {
    let src = include_str!("fixtures/hot_alloc_allowed.rs");
    let diags = run(src, &report_ctx("fixtures/hot_alloc_allowed.rs"));
    assert_eq!(flat(&diags), [], "reasoned allow marker must suppress");
}

#[test]
fn undocumented_unsafe_and_unguarded_kernel_fire() {
    let src = include_str!("fixtures/unsafe_trigger.rs");
    let diags = run(src, &report_ctx("fixtures/unsafe_trigger.rs"));
    assert_eq!(
        flat(&diags),
        [
            (
                Rule::UndocumentedUnsafe,
                4,
                "`unsafe` without a `// SAFETY:` justification (or `# Safety` doc section)",
            ),
            (
                Rule::UndocumentedUnsafe,
                9,
                "`unsafe` without a `// SAFETY:` justification (or `# Safety` doc section)",
            ),
            (
                Rule::UndocumentedUnsafe,
                9,
                "call to `#[target_feature]` fn `kernel` outside an \
                 `is_x86_feature_detected!`-guarded scope",
            ),
        ],
    );
}

#[test]
fn documented_unsafe_and_guarded_kernel_pass() {
    let src = include_str!("fixtures/unsafe_allowed.rs");
    let diags = run(src, &report_ctx("fixtures/unsafe_allowed.rs"));
    assert_eq!(
        flat(&diags),
        [],
        "# Safety doc, SAFETY comment, detection guard and allow marker all suppress"
    );
}

#[test]
fn atomic_ordering_fires_without_justification() {
    let src = include_str!("fixtures/ordering_trigger.rs");
    let diags = run(src, &report_ctx("fixtures/ordering_trigger.rs"));
    assert_eq!(
        flat(&diags),
        [
            (
                Rule::AtomicOrdering,
                6,
                "`Ordering::Relaxed` without an adjacent `// ORDERING:` justification",
            ),
            (
                Rule::AtomicOrdering,
                10,
                "`Ordering::SeqCst` without an adjacent `// ORDERING:` justification",
            ),
        ],
    );
}

#[test]
fn atomic_ordering_satisfied_by_comment_or_marker() {
    let src = include_str!("fixtures/ordering_allowed.rs");
    let diags = run(src, &report_ctx("fixtures/ordering_allowed.rs"));
    assert_eq!(flat(&diags), []);
}

#[test]
fn atomic_ordering_skips_test_code() {
    let src = include_str!("fixtures/ordering_trigger.rs");
    let mut ctx = report_ctx("fixtures/ordering_trigger.rs");
    ctx.test_code = true;
    assert_eq!(run(src, &ctx), [], "test code may pick orderings ad hoc");
}

#[test]
fn determinism_fires_on_hash_clock_and_rng() {
    let src = include_str!("fixtures/determinism_trigger.rs");
    let diags = run(src, &report_ctx("fixtures/determinism_trigger.rs"));
    assert_eq!(
        flat(&diags),
        [
            (
                Rule::Determinism,
                7,
                "`HashMap` in a report-producing crate: iteration order is nondeterministic \
                 — use `BTreeMap`/`BTreeSet` or an index keyed by device",
            ),
            (
                Rule::Determinism,
                15,
                "`Instant::now` in a report-producing crate: wall-clock reads may not \
                 influence report contents",
            ),
            (
                Rule::Determinism,
                19,
                "`seed_from_u64` constructs an RNG outside the seeded `stream_rng` seam \
                 (`bist_core::source::stream_rng`)",
            ),
        ],
        "`use` lines (3-4) must not fire; the type-position `Instant` (line 14) must not fire"
    );
}

#[test]
fn determinism_rng_seam_waives_only_rng_construction() {
    let src = include_str!("fixtures/determinism_trigger.rs");
    let mut ctx = report_ctx("crates/mc/src/batch.rs");
    ctx.rng_seam = true;
    let diags = run(src, &ctx);
    let rules: Vec<(Rule, usize)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    assert_eq!(
        rules,
        [(Rule::Determinism, 7), (Rule::Determinism, 15)],
        "the seam may construct RNGs, but HashMap/Instant findings survive"
    );
}

#[test]
fn determinism_suppressed_by_marker_and_cfg_test() {
    let src = include_str!("fixtures/determinism_allowed.rs");
    let diags = run(src, &report_ctx("fixtures/determinism_allowed.rs"));
    assert_eq!(flat(&diags), []);
}

#[test]
fn determinism_only_applies_to_report_crates() {
    let src = include_str!("fixtures/determinism_trigger.rs");
    let mut ctx = report_ctx("crates/bench/src/lib.rs");
    ctx.report_crate = false;
    assert_eq!(run(src, &ctx), [], "non-report crates are out of scope");
}

#[test]
fn diagnostics_render_clickable_locations() {
    let src = include_str!("fixtures/ordering_trigger.rs");
    let diags = run(src, &report_ctx("crates/x/src/y.rs"));
    assert_eq!(
        diags[0].to_string(),
        "crates/x/src/y.rs:6: [atomic-ordering] `Ordering::Relaxed` without an adjacent \
         `// ORDERING:` justification"
    );
}

#[test]
fn bare_allow_markers_suppress_nothing() {
    // Same trigger line, but the marker carries no reason.
    let src = "// bist-lint: hot-path\nfn hot() -> Vec<u8> {\n    // bist-lint: allow(hot-path-alloc)\n    Vec::new()\n}\n";
    let diags = run(src, &report_ctx("f.rs"));
    assert_eq!(diags.len(), 1, "a reasonless marker is not a justification");
    assert_eq!(diags[0].rule, Rule::HotPathAlloc);
    assert_eq!(diags[0].line, 4);
}

#[test]
fn doc_comments_quoting_marker_syntax_do_not_register() {
    // Prose that *mentions* the marker must not create regions or allows.
    let src = "/// Mark regions with `// bist-lint: hot-path` above the fn.\nfn explain() -> Vec<u8> {\n    Vec::new()\n}\n";
    let diags = run(src, &report_ctx("f.rs"));
    assert_eq!(
        diags,
        [],
        "a quoted marker in a doc comment is not a marker"
    );
}
