//! Property-based tests of the converter substrate's invariants.

use bist_adc::flash::FlashConfig;
use bist_adc::metrics::{dnl, inl, inl_from_dnl};
use bist_adc::sar::SarConfig;
use bist_adc::transfer::{characterize, Adc, TransferFunction};
use bist_adc::types::{Resolution, Volts};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arbitrary monotone transition levels for a 4-bit device.
fn arb_transitions() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001f64..0.2, 15).prop_map(|gaps| {
        let mut t = Vec::with_capacity(15);
        let mut acc = 0.05;
        for g in gaps {
            acc += g;
            t.push(acc);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conversion is monotone non-decreasing in the input for any
    /// monotone transfer function.
    #[test]
    fn conversion_is_monotone(t in arb_transitions()) {
        let res = Resolution::new(4).expect("4 bits valid");
        let hi = t.last().copied().expect("non-empty") + 0.1;
        let tf = TransferFunction::from_transitions(res, Volts(0.0), Volts(hi), t);
        let mut last = 0;
        let mut v = -0.01;
        while v < hi + 0.05 {
            let c = tf.convert(Volts(v)).0;
            prop_assert!(c >= last);
            last = c;
            v += 0.003;
        }
        prop_assert_eq!(last, 15);
    }

    /// Converting a voltage just above transition k yields at least
    /// code k; just below, strictly less.
    #[test]
    fn transitions_are_thresholds(t in arb_transitions()) {
        let res = Resolution::new(4).expect("4 bits valid");
        let hi = t.last().copied().expect("non-empty") + 0.1;
        let tf = TransferFunction::from_transitions(res, Volts(0.0), Volts(hi), t);
        for k in 1..=15u32 {
            let tv = tf.transition(k).0;
            prop_assert!(tf.convert(Volts(tv + 1e-9)).0 >= k);
            prop_assert!(tf.convert(Volts(tv - 1e-9)).0 <= k);
        }
    }

    /// Accumulated-DNL INL and endpoint INL measure the same transfer:
    /// writing X_k = T[k+2] − T[1], the two conventions satisfy
    /// `acc[k] = X_k/q − (k+1)` and `endpoint[k+1] = X_k/q_eff − (k+1)`,
    /// so their difference is exactly `X_k·(1/q − 1/q_eff)` — a fixed
    /// multiple of the transition level.
    #[test]
    fn inl_conventions_are_consistent(t in arb_transitions()) {
        let res = Resolution::new(4).expect("4 bits valid");
        let hi = t.last().copied().expect("non-empty") + 0.1;
        let tf = TransferFunction::from_transitions(res, Volts(0.0), Volts(hi), t);
        let d = dnl(&tf);
        let acc = inl_from_dnl(&d);
        let endpoint = inl(&tf);
        let q = tf.lsb_size().0;
        let trans = tf.transitions();
        let q_eff = (trans[trans.len() - 1] - trans[0]) / (trans.len() - 1) as f64;
        let c = 1.0 / q - 1.0 / q_eff;
        for (k, a) in acc.iter().enumerate() {
            let x = trans[k + 1] - trans[0];
            let predicted = endpoint[k + 1].0 + x * c;
            prop_assert!(
                (a.0 - predicted).abs() < 1e-9,
                "k {}: acc {} vs predicted {}", k, a.0, predicted
            );
        }
    }

    /// Characterisation by sweeping recovers the true transitions of any
    /// monotone transfer to within the sweep step.
    #[test]
    fn characterize_recovers_transitions(t in arb_transitions()) {
        let res = Resolution::new(4).expect("4 bits valid");
        let hi = t.last().copied().expect("non-empty") + 0.1;
        let tf = TransferFunction::from_transitions(res, Volts(0.0), Volts(hi), t.clone());
        let step = 0.0005;
        let rec = characterize(&tf, Volts(step));
        for k in 1..=15u32 {
            let err = (rec.transition(k).0 - tf.transition(k).0).abs();
            prop_assert!(err <= step * 1.01, "transition {k}: err {err}");
        }
    }

    /// Flash devices state a transfer that exactly matches their own
    /// conversion behaviour.
    #[test]
    fn flash_transfer_matches_convert(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let adc = FlashConfig::paper_device().sample(&mut rng);
        let tf = adc.transfer().expect("flash states transfer");
        let mut v = -0.1;
        while v < 6.6 {
            prop_assert_eq!(adc.convert(Volts(v)), tf.convert(Volts(v)), "at {} V", v);
            v += 0.013;
        }
    }

    /// SAR conversion agrees with its own characterised transfer.
    #[test]
    fn sar_transfer_matches_convert(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let adc = SarConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
            .with_unit_cap_sigma(0.03)
            .sample(&mut rng);
        let tf = adc.transfer().expect("sar characterises");
        // The characterisation step bounds the disagreement region around
        // each transition; probe away from transitions.
        let mut v = 0.0123;
        while v < 6.4 {
            let direct = adc.convert(Volts(v)).0 as i64;
            let via_tf = tf.convert(Volts(v)).0 as i64;
            prop_assert!((direct - via_tf).abs() <= 1, "at {} V: {} vs {}", v, direct, via_tf);
            v += 0.037;
        }
    }

    /// Code widths of a flash device sum to the span between the first
    /// and last transition (telescoping identity, the root of Eq. 10).
    #[test]
    fn widths_telescope(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let adc = FlashConfig::paper_device().sample(&mut rng);
        let tf = adc.transfer().expect("flash states transfer");
        let q = tf.lsb_size().0;
        let width_sum: f64 = tf.code_widths_lsb().iter().map(|w| w.0 * q).sum();
        let span = tf.transition(63).0 - tf.transition(1).0;
        prop_assert!((width_sum - span).abs() < 1e-9);
    }
}
