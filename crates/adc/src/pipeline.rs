//! Behavioural two-stage pipeline A/D converter.
//!
//! A third architecture for the reproduction (the paper's method only
//! watches output bits, so it must work unchanged): a coarse flash
//! stage, a residue amplifier, and a fine flash stage. Pipeline-specific
//! mismatch — inter-stage gain error and coarse-threshold offsets —
//! produces the characteristic DNL signature at every coarse-code
//! boundary, different again from the flash ladder's iid widths and the
//! SAR's binary-weighted steps.

use crate::dist::Normal;
use crate::transfer::{Adc, TransferFunction};
use crate::types::{Code, Resolution, Volts};
use rand::Rng;
use std::fmt;

/// Mismatch parameters of a two-stage pipeline converter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    resolution: Resolution,
    coarse_bits: u32,
    low: Volts,
    high: Volts,
    /// Relative σ of the inter-stage (residue) gain.
    sigma_gain_rel: f64,
    /// σ of each coarse comparator threshold, in fine LSB.
    sigma_coarse_lsb: f64,
}

impl PipelineConfig {
    /// Creates a mismatch-free pipeline with `coarse_bits` in the first
    /// stage and `resolution.bits() − coarse_bits` in the second.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or `coarse_bits` is not strictly between
    /// 0 and the total resolution.
    pub fn new(resolution: Resolution, coarse_bits: u32, low: Volts, high: Volts) -> Self {
        assert!(low.0 < high.0, "low must be below high");
        assert!(
            coarse_bits >= 1 && coarse_bits < resolution.bits(),
            "coarse stage must resolve 1..n-1 bits"
        );
        PipelineConfig {
            resolution,
            coarse_bits,
            low,
            high,
            sigma_gain_rel: 0.0,
            sigma_coarse_lsb: 0.0,
        }
    }

    /// Sets the inter-stage gain mismatch (relative σ).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_gain_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        self.sigma_gain_rel = sigma;
        self
    }

    /// Sets the coarse-comparator threshold σ in (fine) LSB.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_coarse_sigma_lsb(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        self.sigma_coarse_lsb = sigma;
        self
    }

    /// The converter resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Coarse-stage bit count.
    pub fn coarse_bits(&self) -> u32 {
        self.coarse_bits
    }

    /// The inter-stage gain relative mismatch σ.
    pub fn gain_sigma(&self) -> f64 {
        self.sigma_gain_rel
    }

    /// The coarse-comparator threshold σ in fine LSB.
    pub fn coarse_sigma_lsb(&self) -> f64 {
        self.sigma_coarse_lsb
    }

    /// A paper-scale pipeline device: 6 bits (3 coarse + 3 fine) over
    /// 0–6.4 V with gain and coarse-threshold mismatch sized so the
    /// coarse-boundary DNL lands in the same decision-relevant band as
    /// the flash batch's σ_w = 0.21 LSB — yield under the stringent spec
    /// is mid-range, so screening exercises both accept and reject
    /// paths.
    pub fn paper_device() -> Self {
        PipelineConfig::new(Resolution::SIX_BIT, 3, Volts(0.0), Volts(6.4))
            .with_gain_sigma(0.08)
            .with_coarse_sigma_lsb(0.4)
    }

    /// Draws one converter instance.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> PipelineAdc {
        let n_coarse = (1u32 << self.coarse_bits) - 1;
        let span = self.high.0 - self.low.0;
        let q = span / self.resolution.code_count() as f64;
        let seg = span / (1u64 << self.coarse_bits) as f64;
        let coarse_dist = Normal::new(0.0, self.sigma_coarse_lsb * q);
        let coarse_thresholds: Vec<f64> = (1..=n_coarse)
            .map(|k| self.low.0 + k as f64 * seg + coarse_dist.sample(rng))
            .collect();
        let gain = Normal::new(1.0, self.sigma_gain_rel).sample(rng).max(0.1);
        PipelineAdc {
            config: *self,
            coarse_thresholds,
            residue_gain: gain,
        }
    }
}

/// One pipeline converter instance.
///
/// # Examples
///
/// ```
/// use bist_adc::pipeline::PipelineConfig;
/// use bist_adc::transfer::Adc;
/// use bist_adc::types::{Resolution, Volts};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let adc = PipelineConfig::new(Resolution::SIX_BIT, 3, Volts(0.0), Volts(6.4))
///     .with_gain_sigma(0.01)
///     .sample(&mut rng);
/// assert!((30..=34).contains(&adc.convert(Volts(3.2)).0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineAdc {
    config: PipelineConfig,
    /// Coarse comparator thresholds (volts), nominally segment edges.
    coarse_thresholds: Vec<f64>,
    /// Realised inter-stage gain relative to nominal.
    residue_gain: f64,
}

impl PipelineAdc {
    /// The configuration this instance was drawn from.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The realised residue gain (1.0 nominal).
    pub fn residue_gain(&self) -> f64 {
        self.residue_gain
    }
}

impl Adc for PipelineAdc {
    fn resolution(&self) -> Resolution {
        self.config.resolution
    }

    fn convert(&self, v: Volts) -> Code {
        let fine_bits = self.config.resolution.bits() - self.config.coarse_bits;
        let fine_codes = 1u32 << fine_bits;
        let span = self.config.high.0 - self.config.low.0;
        let seg = span / (1u64 << self.config.coarse_bits) as f64;

        // Stage 1: coarse decision against (mismatched) thresholds.
        let coarse = self.coarse_thresholds.partition_point(|&t| t <= v.0) as u32;

        // Stage 2: residue = (v − segment base) amplified by the
        // (mismatched) inter-stage gain, quantised by an ideal fine
        // stage with one bit of over-range to absorb coarse offsets.
        let base = self.config.low.0 + f64::from(coarse) * seg;
        let residue = (v.0 - base) * self.residue_gain;
        let fine_raw = (residue / seg * f64::from(fine_codes)).floor() as i64;
        // Over-range correction: the fine stage sees ±half a segment
        // beyond its nominal range and the digital correction folds it
        // into the neighbouring coarse code.
        let total = i64::from(coarse) * i64::from(fine_codes) + fine_raw;
        let max = i64::from(self.config.resolution.max_code().0);
        Code(total.clamp(0, max) as u32)
    }

    fn input_range(&self) -> (Volts, Volts) {
        (self.config.low, self.config.high)
    }

    fn transfer(&self) -> Option<TransferFunction> {
        let q =
            (self.config.high.0 - self.config.low.0) / self.config.resolution.code_count() as f64;
        Some(crate::transfer::characterize(self, Volts(q / 256.0)))
    }
}

impl fmt::Display for PipelineAdc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pipeline ADC ({}+{} bits, residue gain {:.4})",
            self.config.resolution,
            self.config.coarse_bits,
            self.config.resolution.bits() - self.config.coarse_bits,
            self.residue_gain
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::dnl;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn ideal() -> PipelineAdc {
        PipelineConfig::new(Resolution::SIX_BIT, 3, Volts(0.0), Volts(6.4)).sample(&mut rng(1))
    }

    #[test]
    fn ideal_pipeline_matches_ideal_transfer() {
        let pipe = ideal();
        let reference = TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
        let mut v = 0.003;
        while v < 6.4 {
            assert_eq!(
                pipe.convert(Volts(v)),
                reference.convert(Volts(v)),
                "at {v} V"
            );
            v += 0.0137;
        }
    }

    #[test]
    fn ideal_pipeline_dnl_is_flat() {
        let tf = ideal().transfer().expect("pipeline characterises");
        for d in dnl(&tf) {
            assert!(d.0.abs() < 0.02, "dnl {d}");
        }
    }

    #[test]
    fn gain_error_concentrates_at_coarse_boundaries() {
        // Low residue gain leaves gaps at every coarse boundary; the
        // worst DNL must sit on multiples of the fine code count.
        let cfg = PipelineConfig::new(Resolution::SIX_BIT, 3, Volts(0.0), Volts(6.4))
            .with_gain_sigma(0.03);
        let mut boundary_hits = 0;
        let trials = 20;
        for seed in 0..trials {
            let pipe = cfg.sample(&mut rng(seed + 10));
            let tf = pipe.transfer().expect("pipeline characterises");
            let d = dnl(&tf);
            let (argmax, _) = d
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .0.abs().partial_cmp(&b.1 .0.abs()).expect("finite"))
                .expect("non-empty");
            // Inner-code index k is code k+1; boundaries at codes 8,16,…
            if (argmax as u32 + 1).is_multiple_of(8) || (argmax as u32 + 2).is_multiple_of(8) {
                boundary_hits += 1;
            }
        }
        assert!(
            boundary_hits >= trials * 3 / 4,
            "worst DNL at a coarse boundary in only {boundary_hits}/{trials}"
        );
    }

    #[test]
    fn conversion_is_monotone_with_small_mismatch() {
        let cfg = PipelineConfig::new(Resolution::SIX_BIT, 3, Volts(0.0), Volts(6.4))
            .with_gain_sigma(0.01)
            .with_coarse_sigma_lsb(0.2);
        for seed in 0..10 {
            let pipe = cfg.sample(&mut rng(seed));
            let mut last = 0;
            let mut v = -0.05;
            while v < 6.5 {
                let c = pipe.convert(Volts(v)).0;
                assert!(c >= last, "seed {seed}: non-monotone at {v}");
                last = c;
                v += 0.004;
            }
        }
    }

    #[test]
    fn seeded_reproducibility() {
        let cfg = PipelineConfig::new(Resolution::SIX_BIT, 2, Volts(0.0), Volts(6.4))
            .with_gain_sigma(0.02);
        let a = cfg.sample(&mut rng(9));
        let b = cfg.sample(&mut rng(9));
        assert_eq!(a.residue_gain(), b.residue_gain());
    }

    #[test]
    #[should_panic(expected = "coarse stage must resolve")]
    fn zero_coarse_bits_panics() {
        PipelineConfig::new(Resolution::SIX_BIT, 0, Volts(0.0), Volts(6.4));
    }

    #[test]
    #[should_panic(expected = "coarse stage must resolve")]
    fn all_coarse_bits_panics() {
        PipelineConfig::new(Resolution::SIX_BIT, 6, Volts(0.0), Volts(6.4));
    }

    #[test]
    fn display_mentions_pipeline() {
        assert!(ideal().to_string().contains("pipeline"));
    }
}
