//! Random distributions used by the mismatch models.
//!
//! Only `rand`'s uniform primitives are in the approved dependency set,
//! so the Gaussian sampler (Marsaglia polar method) lives here.

use rand::Rng;

/// A normal (Gaussian) distribution sampler.
///
/// # Examples
///
/// ```
/// use bist_adc::dist::Normal;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let n = Normal::new(1.0, 0.21);
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation. A `sigma` of zero yields the constant `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is not finite.
    pub fn new(mean: f64, sigma: f64) -> Self {
        assert!(
            mean.is_finite() && sigma.is_finite(),
            "parameters must be finite"
        );
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Normal { mean, sigma }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal {
            mean: 0.0,
            sigma: 1.0,
        }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one sample using the Marsaglia polar method.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            return self.mean;
        }
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.sigma * u * factor;
            }
        }
    }

    /// Fills `out` with independent samples.
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for x in out {
            *x = self.sample(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dsp::stats::Running;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_parameters() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = Normal::new(2.0, 0.5);
        let mut acc = Running::new();
        for _ in 0..200_000 {
            acc.push(n.sample(&mut rng));
        }
        assert!((acc.mean() - 2.0).abs() < 0.01, "mean {}", acc.mean());
        assert!((acc.std_dev() - 0.5).abs() < 0.01, "sd {}", acc.std_dev());
    }

    #[test]
    fn tail_fractions_are_gaussian() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = Normal::standard();
        let total = 200_000;
        let beyond_2: usize = (0..total)
            .filter(|_| n.sample(&mut rng).abs() > 2.0)
            .count();
        let frac = beyond_2 as f64 / total as f64;
        // 2σ two-sided tail = 4.55 %
        assert!((frac - 0.0455).abs() < 0.005, "frac {frac}");
    }

    #[test]
    fn zero_sigma_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = Normal::new(3.5, 0.0);
        for _ in 0..10 {
            assert_eq!(n.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn fill_populates_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0.0; 8];
        Normal::standard().fill(&mut rng, &mut buf);
        assert!(buf.iter().all(|x| x.is_finite()));
        assert!(buf.iter().any(|&x| x != 0.0));
    }

    #[test]
    #[should_panic(expected = "sigma must be non-negative")]
    fn negative_sigma_panics() {
        Normal::new(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_mean_panics() {
        Normal::new(f64::NAN, 1.0);
    }

    #[test]
    fn accessors() {
        let n = Normal::new(1.0, 2.0);
        assert_eq!(n.mean(), 1.0);
        assert_eq!(n.sigma(), 2.0);
    }
}
