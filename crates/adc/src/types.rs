//! Newtypes shared by the converter models.
//!
//! Voltages, quantities measured in LSB units, output codes and converter
//! resolutions are distinct concepts that are all "just numbers"; the
//! newtypes keep them from being mixed up (paper quantities such as Δs
//! and ΔV are expressed in LSB).

use std::error::Error;
use std::fmt;

/// A voltage in volts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Volts(pub f64);

impl Volts {
    /// Converts to an LSB-denominated quantity given the LSB size.
    ///
    /// # Panics
    ///
    /// Panics if `lsb_size` is not positive.
    pub fn to_lsb(self, lsb_size: Volts) -> Lsb {
        assert!(lsb_size.0 > 0.0, "LSB size must be positive");
        Lsb(self.0 / lsb_size.0)
    }
}

impl fmt::Display for Volts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} V", self.0)
    }
}

impl From<f64> for Volts {
    fn from(v: f64) -> Self {
        Volts(v)
    }
}

/// A quantity measured in units of one ideal LSB (e.g. DNL, INL, the
/// sampling step Δs, a code width ΔV).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Lsb(pub f64);

impl Lsb {
    /// Converts back to volts given the LSB size.
    ///
    /// # Panics
    ///
    /// Panics if `lsb_size` is not positive.
    pub fn to_volts(self, lsb_size: Volts) -> Volts {
        assert!(lsb_size.0 > 0.0, "LSB size must be positive");
        Volts(self.0 * lsb_size.0)
    }
}

impl fmt::Display for Lsb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} LSB", self.0)
    }
}

impl From<f64> for Lsb {
    fn from(v: f64) -> Self {
        Lsb(v)
    }
}

/// An output code of a converter (0 ..= 2ⁿ−1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Code(pub u32);

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Binary for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<u32> for Code {
    fn from(v: u32) -> Self {
        Code(v)
    }
}

/// Error returned when a resolution outside the supported range is
/// requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidResolutionError {
    bits: u32,
}

impl InvalidResolutionError {
    /// The rejected bit count.
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

impl fmt::Display for InvalidResolutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resolution of {} bits is outside the supported range {}..={}",
            self.bits,
            Resolution::MIN_BITS,
            Resolution::MAX_BITS
        )
    }
}

impl Error for InvalidResolutionError {}

/// Converter resolution in bits, restricted to a practical range.
///
/// # Examples
///
/// ```
/// use bist_adc::types::Resolution;
///
/// # fn main() -> Result<(), bist_adc::types::InvalidResolutionError> {
/// let r = Resolution::new(6)?;
/// assert_eq!(r.bits(), 6);
/// assert_eq!(r.code_count(), 64);
/// assert_eq!(r.transition_count(), 63);
/// assert_eq!(r.max_code().0, 63);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Resolution {
    bits: u32,
}

impl Resolution {
    /// Smallest supported resolution.
    pub const MIN_BITS: u32 = 1;
    /// Largest supported resolution (keeps `2^n` comfortably in `u32`
    /// and Monte-Carlo batches tractable).
    pub const MAX_BITS: u32 = 24;

    /// The paper's evaluation vehicle: a 6-bit flash converter.
    pub const SIX_BIT: Resolution = Resolution { bits: 6 };

    /// Creates a resolution of `bits` bits.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidResolutionError`] when `bits` is outside
    /// `MIN_BITS..=MAX_BITS`.
    pub fn new(bits: u32) -> Result<Self, InvalidResolutionError> {
        if (Self::MIN_BITS..=Self::MAX_BITS).contains(&bits) {
            Ok(Resolution { bits })
        } else {
            Err(InvalidResolutionError { bits })
        }
    }

    /// Number of bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of output codes, `2ⁿ`.
    pub fn code_count(&self) -> u32 {
        1 << self.bits
    }

    /// Number of transition levels, `2ⁿ − 1`.
    pub fn transition_count(&self) -> u32 {
        self.code_count() - 1
    }

    /// The highest output code, `2ⁿ − 1`.
    pub fn max_code(&self) -> Code {
        Code(self.code_count() - 1)
    }

    /// Number of *inner* codes (all codes except the two end codes, whose
    /// widths are unbounded): `2ⁿ − 2`.
    pub fn inner_code_count(&self) -> u32 {
        self.code_count().saturating_sub(2)
    }

    /// The ideal LSB size for a converter spanning `full_scale`.
    ///
    /// # Panics
    ///
    /// Panics if `full_scale` is not positive.
    pub fn lsb_size(&self, full_scale: Volts) -> Volts {
        assert!(full_scale.0 > 0.0, "full scale must be positive");
        Volts(full_scale.0 / self.code_count() as f64)
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits)
    }
}

impl TryFrom<u32> for Resolution {
    type Error = InvalidResolutionError;

    fn try_from(bits: u32) -> Result<Self, Self::Error> {
        Resolution::new(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_valid_range() {
        assert!(Resolution::new(0).is_err());
        assert!(Resolution::new(1).is_ok());
        assert!(Resolution::new(24).is_ok());
        assert!(Resolution::new(25).is_err());
    }

    #[test]
    fn resolution_error_reports_bits() {
        let err = Resolution::new(40).unwrap_err();
        assert_eq!(err.bits(), 40);
        assert!(err.to_string().contains("40"));
    }

    #[test]
    fn resolution_derived_quantities() {
        let r = Resolution::new(8).unwrap();
        assert_eq!(r.code_count(), 256);
        assert_eq!(r.transition_count(), 255);
        assert_eq!(r.inner_code_count(), 254);
        assert_eq!(r.max_code(), Code(255));
    }

    #[test]
    fn one_bit_edge_case() {
        let r = Resolution::new(1).unwrap();
        assert_eq!(r.code_count(), 2);
        assert_eq!(r.transition_count(), 1);
        assert_eq!(r.inner_code_count(), 0);
    }

    #[test]
    fn six_bit_constant_matches_paper() {
        assert_eq!(Resolution::SIX_BIT.bits(), 6);
        assert_eq!(Resolution::SIX_BIT.code_count(), 64);
    }

    #[test]
    fn lsb_size_and_conversions() {
        let r = Resolution::new(6).unwrap();
        let lsb = r.lsb_size(Volts(6.4));
        assert!((lsb.0 - 0.1).abs() < 1e-15);
        let x = Volts(0.25).to_lsb(lsb);
        assert!((x.0 - 2.5).abs() < 1e-12);
        let v = Lsb(2.5).to_volts(lsb);
        assert!((v.0 - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "full scale must be positive")]
    fn lsb_size_rejects_non_positive() {
        Resolution::SIX_BIT.lsb_size(Volts(0.0));
    }

    #[test]
    fn try_from_round_trip() {
        let r = Resolution::try_from(12).unwrap();
        assert_eq!(r.bits(), 12);
    }

    #[test]
    fn displays() {
        assert_eq!(Resolution::SIX_BIT.to_string(), "6-bit");
        assert_eq!(Volts(1.5).to_string(), "1.5 V");
        assert_eq!(Lsb(0.21).to_string(), "0.21 LSB");
        assert_eq!(Code(7).to_string(), "7");
        assert_eq!(format!("{:b}", Code(5)), "101");
    }
}
