//! # bist-adc
//!
//! Behavioural A/D-converter modelling substrate for the `adc-bist`
//! reproduction of R. de Vries et al., *Built-In Self-Test Methodology
//! for A/D Converters* (ED&TC 1997).
//!
//! The paper evaluates its BIST on a batch of 364 six-bit **flash**
//! converters; silicon being unavailable, this crate recreates the batch
//! behaviourally:
//!
//! * [`transfer`] — transfer functions as transition levels, plus the
//!   [`transfer::Adc`] trait every converter model implements.
//! * [`flash`] — resistor-ladder + comparator-offset flash converter
//!   whose code widths are Gaussian with the paper's σ ≈ 0.16–0.21 LSB
//!   and correlation ρ ≈ −1/(N−1) (Eq. 10).
//! * [`sar`] — a SAR converter (different mismatch signature) showing the
//!   method is architecture-agnostic.
//! * [`signal`] / [`noise`] / [`stream`] / [`sampler`] — ramp/sine/
//!   triangle stimuli, the §3 noise sources (jitter, transition noise),
//!   the lazy single-pass acquisition stream ([`stream::CodeStream`])
//!   and its materialised [`sampler::Capture`] view.
//! * [`metrics`] / [`histogram`] — ground-truth DNL/INL and the
//!   conventional code-density tests (ramp and sine histogram).
//! * [`faults`] — gross spot-defect injection (stuck bits, stuck codes).
//! * [`spec`] — linearity specs (±0.5 / ±1 LSB) and good/faulty
//!   classification.
//!
//! ## Example
//!
//! ```
//! use bist_adc::flash::FlashConfig;
//! use bist_adc::spec::LinearitySpec;
//! use bist_adc::transfer::Adc;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let device = FlashConfig::paper_device().sample(&mut rng);
//! let truth = LinearitySpec::paper_stringent().classify(&device.transfer().expect("flash states its transfer"));
//! // Under the stringent ±0.5 LSB spec most devices fail (paper: ~70 %).
//! println!("device is {}", if truth.good { "good" } else { "faulty" });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dist;
pub mod faults;
pub mod flash;
pub mod histogram;
pub mod metrics;
pub mod noise;
pub mod pipeline;
pub mod sampler;
pub mod sar;
pub mod signal;
pub mod spec;
pub mod stream;
pub mod transfer;
pub mod types;

pub use flash::{FlashAdc, FlashConfig};
pub use sampler::{acquire, acquire_noisy, Capture, SamplingConfig};
pub use spec::{GroundTruth, LinearitySpec};
pub use stream::CodeStream;
pub use transfer::{Adc, TransferFunction};
pub use types::{Code, Lsb, Resolution, Volts};
