//! Behavioural flash A/D converter with process mismatch.
//!
//! The paper's §4: *"A flash A/D converter consists of a resistor string
//! which determines the transition voltages and comparators which compare
//! the input with these transition voltages. The standard deviation of a
//! code width is determined by the standard deviation of the resistors
//! and the standard deviation of the offset voltages of the
//! comparators."* This module models exactly that: a ladder of `2ⁿ`
//! resistors with relative mismatch and `2ⁿ − 1` comparators with input
//! offset, producing the Gaussian code widths (σ ≈ 0.16–0.21 LSB) and the
//! `ρ ≈ −1/(N−1)` inter-width correlation (Eq. 10) that the §3 theory
//! assumes.

use crate::dist::Normal;
use crate::transfer::{Adc, TransferFunction};
use crate::types::{Code, Resolution, Volts};
use rand::Rng;
use std::fmt;

/// Process/mismatch parameters of a flash converter.
///
/// # Examples
///
/// ```
/// use bist_adc::flash::FlashConfig;
/// use bist_adc::types::{Resolution, Volts};
///
/// let cfg = FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
///     .with_width_sigma_lsb(0.21);
/// // The configured mismatch reproduces the paper's worst-case width σ.
/// assert!((cfg.code_width_sigma_lsb() - 0.21).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashConfig {
    resolution: Resolution,
    low: Volts,
    high: Volts,
    /// Relative standard deviation of each ladder resistor (σ_R/R).
    sigma_resistor_rel: f64,
    /// Comparator input-offset standard deviation, in LSB units.
    sigma_offset_lsb: f64,
}

impl FlashConfig {
    /// Creates a mismatch-free configuration over `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn new(resolution: Resolution, low: Volts, high: Volts) -> Self {
        assert!(low.0 < high.0, "low must be below high");
        FlashConfig {
            resolution,
            low,
            high,
            sigma_resistor_rel: 0.0,
            sigma_offset_lsb: 0.0,
        }
    }

    /// The paper's evaluation device: 6-bit flash over a unit-per-LSB
    /// range with the worst-case code-width σ of 0.21 LSB, split between
    /// ladder and comparator contributions.
    pub fn paper_device() -> Self {
        FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4)).with_width_sigma_lsb(0.21)
    }

    /// Sets the relative resistor mismatch σ_R/R.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_resistor_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        self.sigma_resistor_rel = sigma;
        self
    }

    /// Sets the comparator offset σ in LSB.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_offset_sigma_lsb(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        self.sigma_offset_lsb = sigma;
        self
    }

    /// Chooses ladder and comparator mismatch so the *code width*
    /// standard deviation equals `sigma_lsb`, split evenly between the
    /// two mechanisms (`σ_w² = σ_R² + 2σ_os²`).
    ///
    /// # Panics
    ///
    /// Panics if `sigma_lsb` is negative.
    pub fn with_width_sigma_lsb(mut self, sigma_lsb: f64) -> Self {
        assert!(sigma_lsb >= 0.0, "sigma must be non-negative");
        // Half the width variance from the ladder, half from offsets:
        // σ_R² = σ_w²/2 and 2σ_os² = σ_w²/2.
        self.sigma_resistor_rel = sigma_lsb / 2f64.sqrt();
        self.sigma_offset_lsb = sigma_lsb / 2.0;
        self
    }

    /// The converter resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The nominal input range.
    pub fn input_range(&self) -> (Volts, Volts) {
        (self.low, self.high)
    }

    /// Relative resistor mismatch σ_R/R.
    pub fn resistor_sigma(&self) -> f64 {
        self.sigma_resistor_rel
    }

    /// Comparator offset σ in LSB.
    pub fn offset_sigma_lsb(&self) -> f64 {
        self.sigma_offset_lsb
    }

    /// The predicted code-width standard deviation in LSB:
    /// `σ_w = √(σ_R² + 2·σ_os²)`.
    ///
    /// A code width is `w_k = q·(1+ε_k) + (os_{k+1} − os_k)` where `ε_k`
    /// is the resistor error and `os` the comparator offsets, so its
    /// variance is the resistor variance plus twice the offset variance.
    pub fn code_width_sigma_lsb(&self) -> f64 {
        (self.sigma_resistor_rel.powi(2) + 2.0 * self.sigma_offset_lsb.powi(2)).sqrt()
    }

    /// Draws one converter instance using `rng`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> FlashAdc {
        FlashAdc::sample(*self, rng)
    }
}

/// One flash converter instance: a drawn resistor ladder and comparator
/// offsets.
///
/// Conversion uses a ones-counting (Wallace) thermometer decoder, which
/// is tolerant of bubble errors: the output code equals the number of
/// comparators asserting "input above my threshold". Sweeping the input
/// therefore steps the code at the *sorted* effective thresholds.
///
/// # Examples
///
/// ```
/// use bist_adc::flash::FlashConfig;
/// use bist_adc::transfer::Adc;
/// use bist_adc::types::Volts;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let adc = FlashConfig::paper_device().sample(&mut rng);
/// let code = adc.convert(Volts(3.2));
/// assert!((30..=34).contains(&code.0)); // near mid-scale, mismatch-limited
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlashAdc {
    config: FlashConfig,
    /// Effective comparator thresholds (ladder tap + offset), unsorted —
    /// i.e. per-comparator physical thresholds.
    thresholds: Vec<f64>,
    /// The same thresholds sorted, defining the effective transfer.
    sorted: Vec<f64>,
}

impl FlashAdc {
    /// Draws a converter instance from `config` using `rng`.
    pub fn sample<R: Rng + ?Sized>(config: FlashConfig, rng: &mut R) -> Self {
        let n_res = config.resolution.code_count() as usize;
        let n_cmp = config.resolution.transition_count() as usize;
        let res_dist = Normal::new(1.0, config.sigma_resistor_rel);
        // Draw resistors; clamp at a small positive floor so a wildly
        // unlucky draw cannot produce a negative resistance.
        let resistors: Vec<f64> = (0..n_res).map(|_| res_dist.sample(rng).max(1e-6)).collect();
        let total: f64 = resistors.iter().sum();
        let span = config.high.0 - config.low.0;
        let q = span / config.resolution.code_count() as f64;
        let os_dist = Normal::new(0.0, config.sigma_offset_lsb * q);
        let mut acc = 0.0;
        let mut thresholds = Vec::with_capacity(n_cmp);
        for r in &resistors[..n_cmp] {
            acc += r;
            let tap = config.low.0 + span * acc / total;
            thresholds.push(tap + os_dist.sample(rng));
        }
        let mut sorted = thresholds.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("thresholds are finite"));
        FlashAdc {
            config,
            thresholds,
            sorted,
        }
    }

    /// Builds an instance from explicit comparator thresholds (volts),
    /// e.g. for targeted fault studies.
    ///
    /// # Panics
    ///
    /// Panics if the threshold count is not `2ⁿ − 1` or any threshold is
    /// not finite.
    pub fn from_thresholds(config: FlashConfig, thresholds: Vec<f64>) -> Self {
        assert_eq!(
            thresholds.len(),
            config.resolution.transition_count() as usize,
            "expected {} thresholds",
            config.resolution.transition_count()
        );
        assert!(thresholds.iter().all(|t| t.is_finite()));
        let mut sorted = thresholds.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("thresholds are finite"));
        FlashAdc {
            config,
            thresholds,
            sorted,
        }
    }

    /// The configuration this instance was drawn from.
    pub fn config(&self) -> &FlashConfig {
        &self.config
    }

    /// Physical (unsorted) comparator thresholds.
    pub fn comparator_thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// The raw thermometer code for input `v`: bit `k` set when
    /// comparator `k` (ordered along the ladder) asserts.
    pub fn thermometer(&self, v: Volts) -> Vec<bool> {
        self.thresholds.iter().map(|&t| v.0 >= t).collect()
    }

    /// Whether the thermometer code for `v` contains a bubble (a 0 below
    /// a 1), which happens when comparator offsets reorder thresholds.
    pub fn has_bubble_at(&self, v: Volts) -> bool {
        let code = self.thermometer(v);
        let first_zero = code.iter().position(|&b| !b).unwrap_or(code.len());
        code[first_zero..].iter().any(|&b| b)
    }

    /// Applies a short-circuit fault to ladder segment `k` (the resistor
    /// between taps `k` and `k+1`): its resistance collapses, merging two
    /// thresholds. Returns a new faulty instance.
    ///
    /// # Panics
    ///
    /// Panics if `k + 1` is not a valid threshold index (`1..2ⁿ−1`).
    pub fn with_ladder_short(&self, k: usize) -> FlashAdc {
        assert!(
            k + 1 < self.thresholds.len() + 1 && k >= 1,
            "segment index {k} out of range"
        );
        let mut thresholds = self.thresholds.clone();
        // Tap k+1 collapses onto tap k.
        thresholds[k] = thresholds[k - 1];
        FlashAdc::from_thresholds(self.config, thresholds)
    }

    /// Applies a stuck comparator fault: comparator `k` (0-based) always
    /// outputs `stuck_high`. With ones-count decoding this biases every
    /// code above/below the fault. Returns a new faulty instance.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn with_stuck_comparator(&self, k: usize, stuck_high: bool) -> FlashAdc {
        assert!(k < self.thresholds.len(), "comparator index out of range");
        let mut thresholds = self.thresholds.clone();
        // A comparator stuck high always counts: threshold −∞ (well below
        // range); stuck low never counts: +∞ (well above range).
        let span = self.config.high.0 - self.config.low.0;
        thresholds[k] = if stuck_high {
            self.config.low.0 - 1e3 * span
        } else {
            self.config.high.0 + 1e3 * span
        };
        FlashAdc::from_thresholds(self.config, thresholds)
    }
}

impl Adc for FlashAdc {
    fn resolution(&self) -> Resolution {
        self.config.resolution
    }

    fn convert(&self, v: Volts) -> Code {
        // Ones-counting decode == rank of v among sorted thresholds.
        Code(self.sorted.partition_point(|&t| t <= v.0) as u32)
    }

    fn input_range(&self) -> (Volts, Volts) {
        (self.config.low, self.config.high)
    }

    fn transfer(&self) -> Option<TransferFunction> {
        Some(TransferFunction::from_transitions(
            self.config.resolution,
            self.config.low,
            self.config.high,
            self.sorted.clone(),
        ))
    }

    fn transition_levels(&self) -> Option<&[f64]> {
        Some(&self.sorted)
    }
}

impl fmt::Display for FlashAdc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} flash ADC (σ_R {:.4}, σ_os {:.4} LSB)",
            self.config.resolution, self.config.sigma_resistor_rel, self.config.sigma_offset_lsb
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dsp::stats::{mean_pairwise_correlation, Running};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn mismatch_free_device_is_ideal() {
        let cfg = FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
        let adc = cfg.sample(&mut rng(1));
        let tf = adc.transfer().unwrap();
        for (k, w) in tf.code_widths_lsb().iter().enumerate() {
            assert!((w.0 - 1.0).abs() < 1e-9, "code {}: {w:?}", k + 1);
        }
        assert_eq!(adc.convert(Volts(3.25)), Code(32));
    }

    #[test]
    fn width_sigma_matches_prediction() {
        let cfg = FlashConfig::paper_device();
        let mut widths = Running::new();
        let mut r = rng(42);
        for _ in 0..200 {
            let adc = cfg.sample(&mut r);
            let tf = adc.transfer().unwrap();
            for w in tf.code_widths_lsb() {
                widths.push(w.0);
            }
        }
        let sd = widths.std_dev();
        let predicted = cfg.code_width_sigma_lsb();
        assert!(
            (sd - predicted).abs() < 0.01,
            "measured σ {sd}, predicted {predicted}"
        );
        assert!((widths.mean() - 1.0).abs() < 0.01);
    }

    #[test]
    fn width_correlation_matches_eq10() {
        // Ladder-only mismatch: the fixed-sum constraint gives
        // ρ = −1/(N−1) with N = 2^n codes (Eq. 10). Use a small device so
        // the effect is visible above estimation noise.
        let res = Resolution::new(4).unwrap();
        let cfg = FlashConfig::new(res, Volts(0.0), Volts(1.6)).with_resistor_sigma(0.1);
        let mut samples = Vec::new();
        let mut r = rng(7);
        for _ in 0..4000 {
            let adc = cfg.sample(&mut r);
            let tf = adc.transfer().unwrap();
            samples.push(tf.code_widths_lsb().iter().map(|w| w.0).collect());
        }
        let rho = mean_pairwise_correlation(&samples);
        let expected = -1.0 / (res.code_count() as f64 - 1.0);
        assert!(
            (rho - expected).abs() < 0.015,
            "rho {rho}, expected {expected}"
        );
    }

    #[test]
    fn instances_differ_across_draws() {
        let cfg = FlashConfig::paper_device();
        let mut r = rng(3);
        let a = cfg.sample(&mut r);
        let b = cfg.sample(&mut r);
        assert_ne!(a.comparator_thresholds(), b.comparator_thresholds());
    }

    #[test]
    fn same_seed_reproduces_instance() {
        let cfg = FlashConfig::paper_device();
        let a = cfg.sample(&mut rng(11));
        let b = cfg.sample(&mut rng(11));
        assert_eq!(a.comparator_thresholds(), b.comparator_thresholds());
    }

    #[test]
    fn conversion_is_monotone_in_input() {
        let cfg = FlashConfig::paper_device();
        let adc = cfg.sample(&mut rng(5));
        let mut last = 0;
        let mut v = -0.1;
        while v < 6.5 {
            let c = adc.convert(Volts(v)).0;
            assert!(c >= last, "non-monotone at {v}");
            last = c;
            v += 0.003;
        }
        assert_eq!(last, 63);
    }

    #[test]
    fn bubble_detection_with_large_offsets() {
        // Huge comparator offsets guarantee reordered thresholds.
        let cfg = FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
            .with_offset_sigma_lsb(3.0);
        let adc = cfg.sample(&mut rng(2));
        let mut any_bubble = false;
        let mut v = 0.0;
        while v < 6.4 {
            any_bubble |= adc.has_bubble_at(Volts(v));
            v += 0.01;
        }
        assert!(any_bubble, "expected at least one thermometer bubble");
    }

    #[test]
    fn no_bubbles_without_offsets() {
        let cfg =
            FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4)).with_resistor_sigma(0.2);
        let adc = cfg.sample(&mut rng(2));
        let mut v = 0.0;
        while v < 6.4 {
            assert!(!adc.has_bubble_at(Volts(v)));
            v += 0.01;
        }
    }

    #[test]
    fn ladder_short_merges_codes() {
        let cfg = FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
        let adc = cfg.sample(&mut rng(1)).with_ladder_short(10);
        let tf = adc.transfer().unwrap();
        // Code 10's width collapses to zero.
        assert!(tf.code_width(10).0.abs() < 1e-12);
    }

    #[test]
    fn stuck_high_comparator_skips_code_zero() {
        let cfg = FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
        let adc = cfg.sample(&mut rng(1)).with_stuck_comparator(0, true);
        // Even far below range one comparator asserts.
        assert_eq!(adc.convert(Volts(-1.0)), Code(1));
    }

    #[test]
    fn stuck_low_comparator_caps_top_code() {
        let cfg = FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
        let adc = cfg.sample(&mut rng(1)).with_stuck_comparator(5, false);
        assert_eq!(adc.convert(Volts(100.0)), Code(62));
    }

    #[test]
    fn thermometer_count_matches_code() {
        let cfg = FlashConfig::paper_device();
        let adc = cfg.sample(&mut rng(9));
        for i in 0..64 {
            let v = Volts(i as f64 * 0.1 + 0.05);
            let ones = adc.thermometer(v).iter().filter(|&&b| b).count() as u32;
            assert_eq!(adc.convert(v).0, ones);
        }
    }

    #[test]
    #[should_panic(expected = "sigma must be non-negative")]
    fn negative_sigma_panics() {
        FlashConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(1.0)).with_resistor_sigma(-0.1);
    }

    #[test]
    fn display_mentions_flash() {
        let adc = FlashConfig::paper_device().sample(&mut rng(1));
        assert!(adc.to_string().contains("flash"));
    }
}
