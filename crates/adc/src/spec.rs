//! Linearity specifications and ground-truth classification.
//!
//! A device is *good* when every inner-code DNL and every INL value is
//! within the specified limits — evaluated on the **true** transfer
//! function. The BIST (which only sees sampled counts) is judged against
//! this classification: rejecting a good device is a type I error,
//! accepting a faulty one a type II error (§3).

use crate::metrics::{dnl, inl_from_dnl};
use crate::transfer::TransferFunction;
use crate::types::Lsb;
use std::fmt;

/// Symmetric DNL/INL limits in LSB.
///
/// # Examples
///
/// ```
/// use bist_adc::spec::LinearitySpec;
///
/// // The paper's stringent spec (±0.5 LSB DNL) and the device's actual
/// // spec (±1 LSB DNL):
/// let stringent = LinearitySpec::dnl_only(0.5);
/// let actual = LinearitySpec::dnl_only(1.0);
/// assert!(stringent.dnl_limit().0 < actual.dnl_limit().0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearitySpec {
    dnl_limit: Lsb,
    inl_limit: Option<Lsb>,
}

impl LinearitySpec {
    /// A spec with both DNL and INL limits (each `±limit` LSB).
    ///
    /// # Panics
    ///
    /// Panics if either limit is not positive.
    pub fn new(dnl_limit: f64, inl_limit: f64) -> Self {
        assert!(dnl_limit > 0.0, "DNL limit must be positive");
        assert!(inl_limit > 0.0, "INL limit must be positive");
        LinearitySpec {
            dnl_limit: Lsb(dnl_limit),
            inl_limit: Some(Lsb(inl_limit)),
        }
    }

    /// A DNL-only spec (the paper's Table 1/2 experiments test DNL).
    ///
    /// # Panics
    ///
    /// Panics if `dnl_limit` is not positive.
    pub fn dnl_only(dnl_limit: f64) -> Self {
        assert!(dnl_limit > 0.0, "DNL limit must be positive");
        LinearitySpec {
            dnl_limit: Lsb(dnl_limit),
            inl_limit: None,
        }
    }

    /// The paper's *stringent* spec: ±0.5 LSB DNL (used so that only
    /// ~30 % of devices pass, giving statistically meaningful error
    /// rates from a 364-device batch).
    pub fn paper_stringent() -> Self {
        LinearitySpec::dnl_only(0.5)
    }

    /// The paper's *actual* production spec: ±1 LSB DNL.
    pub fn paper_actual() -> Self {
        LinearitySpec::dnl_only(1.0)
    }

    /// The DNL limit (±, LSB).
    pub fn dnl_limit(&self) -> Lsb {
        self.dnl_limit
    }

    /// The INL limit (±, LSB), if specified.
    pub fn inl_limit(&self) -> Option<Lsb> {
        self.inl_limit
    }

    /// The allowed code-width window `(ΔV_min, ΔV_max)` in LSB implied
    /// by the DNL limit: `1 ∓ limit`.
    pub fn width_window_lsb(&self) -> (Lsb, Lsb) {
        (
            Lsb((1.0 - self.dnl_limit.0).max(0.0)),
            Lsb(1.0 + self.dnl_limit.0),
        )
    }

    /// Classifies a transfer function against the spec.
    pub fn classify(&self, tf: &TransferFunction) -> GroundTruth {
        let d = dnl(tf);
        let worst_dnl = d.iter().map(|x| x.0.abs()).fold(0.0f64, f64::max);
        let dnl_ok = worst_dnl <= self.dnl_limit.0;
        let (worst_inl, inl_ok) = match self.inl_limit {
            Some(limit) => {
                let i = inl_from_dnl(&d);
                let worst = i.iter().map(|x| x.0.abs()).fold(0.0f64, f64::max);
                (worst, worst <= limit.0)
            }
            None => (0.0, true),
        };
        GroundTruth {
            good: dnl_ok && inl_ok,
            worst_dnl: Lsb(worst_dnl),
            worst_inl: Lsb(worst_inl),
            failing_codes: d
                .iter()
                .enumerate()
                .filter(|(_, x)| x.0.abs() > self.dnl_limit.0)
                .map(|(i, _)| i as u32 + 1)
                .collect(),
        }
    }
}

impl fmt::Display for LinearitySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inl_limit {
            Some(i) => write!(f, "DNL ±{} LSB, INL ±{} LSB", self.dnl_limit.0, i.0),
            None => write!(f, "DNL ±{} LSB", self.dnl_limit.0),
        }
    }
}

/// Ground-truth classification of one device.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    /// Whether the device meets the spec.
    pub good: bool,
    /// Worst |DNL| over the inner codes, LSB.
    pub worst_dnl: Lsb,
    /// Worst |INL| (accumulated-DNL convention), LSB; 0 when the spec has
    /// no INL limit.
    pub worst_inl: Lsb,
    /// Inner codes violating the DNL limit (1-based code indices).
    pub failing_codes: Vec<u32>,
}

impl fmt::Display for GroundTruth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (worst DNL {:.3} LSB, worst INL {:.3} LSB, {} failing codes)",
            if self.good { "GOOD" } else { "FAULTY" },
            self.worst_dnl.0,
            self.worst_inl.0,
            self.failing_codes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Resolution, Volts};

    fn ideal() -> TransferFunction {
        TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
    }

    fn with_dnl_spike(idx: usize, extra_lsb: f64) -> TransferFunction {
        let mut t: Vec<f64> = (1..=63).map(|k| k as f64 * 0.1).collect();
        // Raising transition t[idx] (= T[idx+1]) widens code `idx` and
        // narrows code `idx+1`, leaving all other widths unchanged.
        t[idx] += extra_lsb * 0.1;
        TransferFunction::from_transitions(Resolution::SIX_BIT, Volts(0.0), Volts(6.4), t)
    }

    #[test]
    fn ideal_is_good_under_any_spec() {
        for spec in [
            LinearitySpec::paper_stringent(),
            LinearitySpec::paper_actual(),
            LinearitySpec::new(0.1, 0.2),
        ] {
            let gt = spec.classify(&ideal());
            assert!(gt.good, "{spec}");
            assert!(gt.failing_codes.is_empty());
        }
    }

    #[test]
    fn dnl_spike_fails_stringent_passes_actual() {
        let tf = with_dnl_spike(10, 0.7); // code 10 gets +0.7, code 11 −0.7
        let stringent = LinearitySpec::paper_stringent().classify(&tf);
        assert!(!stringent.good);
        assert_eq!(stringent.failing_codes, vec![10, 11]);
        let actual = LinearitySpec::paper_actual().classify(&tf);
        assert!(actual.good);
        assert!((actual.worst_dnl.0 - 0.7).abs() < 1e-9);
    }

    #[test]
    fn width_window_matches_spec() {
        let (lo, hi) = LinearitySpec::paper_stringent().width_window_lsb();
        assert!((lo.0 - 0.5).abs() < 1e-12);
        assert!((hi.0 - 1.5).abs() < 1e-12);
        let (lo, hi) = LinearitySpec::paper_actual().width_window_lsb();
        assert!(lo.0.abs() < 1e-12);
        assert!((hi.0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn width_window_clamps_at_zero() {
        let (lo, _) = LinearitySpec::dnl_only(1.5).width_window_lsb();
        assert_eq!(lo.0, 0.0);
    }

    #[test]
    fn inl_limit_can_fail_when_dnl_passes() {
        // Many small same-sign DNLs accumulate into a large INL.
        let mut t: Vec<f64> = Vec::new();
        let mut acc = 0.0;
        for k in 1..=63 {
            // First 31 codes each 1.05 LSB wide: INL drifts to ~1.5 LSB.
            let w = if k <= 31 { 0.105 } else { 0.095 };
            acc += w;
            t.push(acc);
            let _ = k;
        }
        let tf = TransferFunction::from_transitions(Resolution::SIX_BIT, Volts(0.0), Volts(6.4), t);
        let spec = LinearitySpec::new(0.5, 1.0);
        let gt = spec.classify(&tf);
        assert!(gt.worst_dnl.0 < 0.5, "dnl {}", gt.worst_dnl.0);
        assert!(gt.worst_inl.0 > 1.0, "inl {}", gt.worst_inl.0);
        assert!(!gt.good);
    }

    #[test]
    #[should_panic(expected = "DNL limit must be positive")]
    fn zero_limit_panics() {
        LinearitySpec::dnl_only(0.0);
    }

    #[test]
    fn displays() {
        assert_eq!(LinearitySpec::paper_stringent().to_string(), "DNL ±0.5 LSB");
        assert!(LinearitySpec::new(0.5, 1.0).to_string().contains("INL"));
        let gt = LinearitySpec::paper_actual().classify(&ideal());
        assert!(gt.to_string().contains("GOOD"));
    }
}
