//! Fault injection on converter outputs.
//!
//! §4 of the paper separates *parametric* variation (the subject of the
//! error theory) from *gross* faults caused by spot defects, noting that
//! gross faults "have such a large impact on the code widths … that these
//! faults will also be detected by the BIST method". The decorators here
//! inject gross digital faults so tests can verify that claim; analog
//! ladder/comparator faults live on `FlashAdc` itself.

use crate::transfer::{Adc, TransferFunction};
use crate::types::{Code, Resolution, Volts};
use std::fmt;

/// A digital fault applied to the output word of a converter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum OutputFault {
    /// Output bit `bit` is stuck at `value`.
    StuckBit {
        /// Bit index, 0 = LSB.
        bit: u32,
        /// The stuck level.
        value: bool,
    },
    /// Two output bits are swapped (a routing defect).
    SwappedBits {
        /// First bit index.
        a: u32,
        /// Second bit index.
        b: u32,
    },
    /// The whole output bus is stuck at a constant code.
    StuckCode(Code),
    /// Output code offset by a constant (wraps within the code range) —
    /// e.g. a decoder miswire.
    CodeOffset(i32),
}

impl OutputFault {
    /// Applies the fault to a code of the given resolution.
    pub fn apply(&self, code: Code, resolution: Resolution) -> Code {
        let mask = resolution.max_code().0;
        match *self {
            OutputFault::StuckBit { bit, value } => {
                let b = 1u32 << bit;
                Code(if value { code.0 | b } else { code.0 & !b } & mask)
            }
            OutputFault::SwappedBits { a, b } => {
                let bit_a = (code.0 >> a) & 1;
                let bit_b = (code.0 >> b) & 1;
                let mut c = code.0 & !((1 << a) | (1 << b));
                c |= bit_a << b;
                c |= bit_b << a;
                Code(c & mask)
            }
            OutputFault::StuckCode(c) => Code(c.0 & mask),
            OutputFault::CodeOffset(d) => {
                let n = resolution.code_count() as i64;
                let v = (code.0 as i64 + d as i64).rem_euclid(n);
                Code(v as u32)
            }
        }
    }
}

impl fmt::Display for OutputFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            OutputFault::StuckBit { bit, value } => {
                write!(f, "bit {bit} stuck at {}", u8::from(value))
            }
            OutputFault::SwappedBits { a, b } => write!(f, "bits {a} and {b} swapped"),
            OutputFault::StuckCode(c) => write!(f, "output stuck at code {c}"),
            OutputFault::CodeOffset(d) => write!(f, "code offset by {d}"),
        }
    }
}

/// An [`Adc`] decorator that applies an [`OutputFault`] to every
/// conversion.
///
/// # Examples
///
/// ```
/// use bist_adc::faults::{FaultyAdc, OutputFault};
/// use bist_adc::transfer::{Adc, TransferFunction};
/// use bist_adc::types::{Code, Resolution, Volts};
///
/// let good = TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
/// let bad = FaultyAdc::new(good, OutputFault::StuckBit { bit: 0, value: false });
/// // Code 33 (0b100001) reads as 32 (0b100000).
/// assert_eq!(bad.convert(Volts(3.35)), Code(32));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyAdc<A> {
    inner: A,
    fault: OutputFault,
}

impl<A: Adc> FaultyAdc<A> {
    /// Wraps `inner` with `fault`.
    pub fn new(inner: A, fault: OutputFault) -> Self {
        FaultyAdc { inner, fault }
    }

    /// The injected fault.
    pub fn fault(&self) -> OutputFault {
        self.fault
    }

    /// Unwraps the inner converter.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: Adc> Adc for FaultyAdc<A> {
    fn resolution(&self) -> Resolution {
        self.inner.resolution()
    }

    fn convert(&self, v: Volts) -> Code {
        self.fault
            .apply(self.inner.convert(v), self.inner.resolution())
    }

    fn input_range(&self) -> (Volts, Volts) {
        self.inner.input_range()
    }

    fn transfer(&self) -> Option<TransferFunction> {
        // The faulted transfer is generally not expressible as monotone
        // transition levels; callers should characterise by sweeping.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal() -> TransferFunction {
        TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
    }

    #[test]
    fn stuck_low_bit_halves_codes() {
        let bad = FaultyAdc::new(
            ideal(),
            OutputFault::StuckBit {
                bit: 0,
                value: false,
            },
        );
        for k in 0..64u32 {
            let v = Volts(k as f64 * 0.1 + 0.05);
            assert_eq!(bad.convert(v).0, k & !1);
        }
    }

    #[test]
    fn stuck_high_msb_forces_upper_half() {
        let bad = FaultyAdc::new(
            ideal(),
            OutputFault::StuckBit {
                bit: 5,
                value: true,
            },
        );
        assert_eq!(bad.convert(Volts(0.05)).0, 32);
        assert_eq!(bad.convert(Volts(6.35)).0, 63);
    }

    #[test]
    fn swapped_bits() {
        let f = OutputFault::SwappedBits { a: 0, b: 5 };
        // 0b000001 -> 0b100000
        assert_eq!(f.apply(Code(1), Resolution::SIX_BIT), Code(32));
        // symmetric
        assert_eq!(f.apply(Code(32), Resolution::SIX_BIT), Code(1));
        // invariant when bits equal
        assert_eq!(f.apply(Code(33), Resolution::SIX_BIT), Code(33));
    }

    #[test]
    fn stuck_code_is_constant() {
        let bad = FaultyAdc::new(ideal(), OutputFault::StuckCode(Code(17)));
        assert_eq!(bad.convert(Volts(0.0)), Code(17));
        assert_eq!(bad.convert(Volts(6.4)), Code(17));
    }

    #[test]
    fn code_offset_wraps() {
        let f = OutputFault::CodeOffset(3);
        assert_eq!(f.apply(Code(62), Resolution::SIX_BIT), Code(1));
        let f = OutputFault::CodeOffset(-1);
        assert_eq!(f.apply(Code(0), Resolution::SIX_BIT), Code(63));
    }

    #[test]
    fn faulty_adc_reports_no_transfer() {
        let bad = FaultyAdc::new(ideal(), OutputFault::CodeOffset(1));
        assert!(bad.transfer().is_none());
        assert_eq!(bad.resolution().bits(), 6);
        assert_eq!(bad.fault(), OutputFault::CodeOffset(1));
    }

    #[test]
    fn into_inner_round_trip() {
        let bad = FaultyAdc::new(ideal(), OutputFault::CodeOffset(1));
        let good = bad.into_inner();
        assert_eq!(good.convert(Volts(3.25)), Code(32));
    }

    #[test]
    fn fault_display() {
        assert_eq!(
            OutputFault::StuckBit {
                bit: 2,
                value: true
            }
            .to_string(),
            "bit 2 stuck at 1"
        );
        assert!(OutputFault::SwappedBits { a: 1, b: 2 }
            .to_string()
            .contains("swapped"));
    }
}
