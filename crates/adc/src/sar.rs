//! Behavioural successive-approximation (SAR) A/D converter.
//!
//! The paper's method is architecture-agnostic — it only watches output
//! bits — so the reproduction includes a second converter architecture to
//! demonstrate that. A SAR converter resolves one bit per step against a
//! binary-weighted capacitor DAC; capacitor mismatch produces the
//! characteristic DNL signature at major code boundaries (largest at the
//! MSB transition), a very different error profile from the flash
//! ladder's iid widths.

use crate::dist::Normal;
use crate::transfer::{Adc, TransferFunction};
use crate::types::{Code, Resolution, Volts};
use rand::Rng;
use std::fmt;

/// Mismatch parameters for a SAR converter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SarConfig {
    resolution: Resolution,
    low: Volts,
    high: Volts,
    /// Relative standard deviation of the *unit* capacitor. Bit `i`'s
    /// weight is the sum of `2^i` unit capacitors, so its relative σ is
    /// `sigma_unit/√(2^i)` — the standard matching model.
    sigma_unit_cap: f64,
    /// Comparator offset σ in LSB (shifts the whole transfer).
    sigma_offset_lsb: f64,
}

impl SarConfig {
    /// Creates a mismatch-free SAR configuration.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn new(resolution: Resolution, low: Volts, high: Volts) -> Self {
        assert!(low.0 < high.0, "low must be below high");
        SarConfig {
            resolution,
            low,
            high,
            sigma_unit_cap: 0.0,
            sigma_offset_lsb: 0.0,
        }
    }

    /// Sets the unit-capacitor relative mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_unit_cap_sigma(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        self.sigma_unit_cap = sigma;
        self
    }

    /// Sets the comparator offset σ in LSB.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_offset_sigma_lsb(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        self.sigma_offset_lsb = sigma;
        self
    }

    /// The converter resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The unit-capacitor relative mismatch σ.
    pub fn unit_cap_sigma(&self) -> f64 {
        self.sigma_unit_cap
    }

    /// The comparator offset σ in LSB.
    pub fn offset_sigma_lsb(&self) -> f64 {
        self.sigma_offset_lsb
    }

    /// A paper-scale SAR device: 6 bits over 0–6.4 V with a
    /// unit-capacitor mismatch sized so the MSB major-carry DNL lands in
    /// the same decision-relevant band as the flash batch's σ_w = 0.21
    /// LSB — yield under the stringent spec is mid-range, so screening
    /// exercises both accept and reject paths.
    pub fn paper_device() -> Self {
        SarConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
            .with_unit_cap_sigma(0.05)
            .with_offset_sigma_lsb(0.1)
    }

    /// Draws one converter instance.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SarAdc {
        let bits = self.resolution.bits();
        let q = (self.high.0 - self.low.0) / self.resolution.code_count() as f64;
        // Bit weight i nominally 2^i LSB; mismatch σ = σ_unit·√(2^i)
        // (absolute, in unit-capacitor counts).
        let weights: Vec<f64> = (0..bits)
            .map(|i| {
                let units = (1u64 << i) as f64;
                let sigma_abs = self.sigma_unit_cap * units.sqrt();
                (units + Normal::new(0.0, sigma_abs).sample(rng)).max(0.0) * q
            })
            .collect();
        let offset = Normal::new(0.0, self.sigma_offset_lsb * q).sample(rng);
        SarAdc {
            config: *self,
            weights,
            offset,
        }
    }
}

/// One SAR converter instance.
///
/// # Examples
///
/// ```
/// use bist_adc::sar::SarConfig;
/// use bist_adc::transfer::Adc;
/// use bist_adc::types::{Resolution, Volts};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let adc = SarConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
///     .with_unit_cap_sigma(0.02)
///     .sample(&mut rng);
/// let mid = adc.convert(Volts(3.2));
/// assert!((30..=34).contains(&mid.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SarAdc {
    config: SarConfig,
    /// DAC weight of each bit in volts (index 0 = LSB).
    weights: Vec<f64>,
    /// Comparator offset in volts.
    offset: f64,
}

impl SarAdc {
    /// The configuration this instance was drawn from.
    pub fn config(&self) -> &SarConfig {
        &self.config
    }

    /// The realised DAC bit weights in volts (LSB first).
    pub fn bit_weights(&self) -> &[f64] {
        &self.weights
    }

    /// The DAC output voltage for a code.
    pub fn dac(&self, code: Code) -> Volts {
        let mut v = self.config.low.0;
        for (i, w) in self.weights.iter().enumerate() {
            if (code.0 >> i) & 1 == 1 {
                v += w;
            }
        }
        Volts(v)
    }
}

impl Adc for SarAdc {
    fn resolution(&self) -> Resolution {
        self.config.resolution
    }

    fn convert(&self, v: Volts) -> Code {
        // Successive approximation: trial each bit from MSB down. The
        // comparator decides v (−offset) against DAC(trial); with ideal
        // weights the transition into code k sits at `low + k·q`, matching
        // TransferFunction::ideal.
        let bits = self.config.resolution.bits();
        let vin = v.0 + self.offset;
        let mut code = 0u32;
        for i in (0..bits).rev() {
            let trial = code | (1 << i);
            if vin >= self.dac(Code(trial)).0 {
                code = trial;
            }
        }
        Code(code)
    }

    fn input_range(&self) -> (Volts, Volts) {
        (self.config.low, self.config.high)
    }

    fn transfer(&self) -> Option<TransferFunction> {
        // The SAR decision tree yields transitions at the DAC levels of
        // each code (plus the mid-rise q), but DAC non-monotonicity can
        // reorder them; recover by characterisation at fine resolution.
        let q =
            (self.config.high.0 - self.config.low.0) / self.config.resolution.code_count() as f64;
        Some(crate::transfer::characterize(self, Volts(q / 256.0)))
    }
}

impl fmt::Display for SarAdc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} SAR ADC (σ_unit {:.4})",
            self.config.resolution, self.config.sigma_unit_cap
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::dnl;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn ideal_sar() -> SarAdc {
        SarConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4)).sample(&mut rng(1))
    }

    #[test]
    fn ideal_sar_matches_ideal_transfer() {
        let sar = ideal_sar();
        let ideal = TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
        for k in 0..640 {
            let v = Volts(k as f64 * 0.01 + 0.003);
            assert_eq!(sar.convert(v), ideal.convert(v), "at {v}");
        }
    }

    #[test]
    fn ideal_sar_dnl_is_zero() {
        let tf = ideal_sar().transfer().unwrap();
        for d in dnl(&tf) {
            assert!(d.0.abs() < 0.02, "dnl {d}"); // characterisation step limit
        }
    }

    #[test]
    fn dac_superposes_weights() {
        let sar = ideal_sar();
        let v = sar.dac(Code(0b101));
        assert!((v.0 - 0.5).abs() < 1e-12); // 5 LSB · 0.1 V
    }

    #[test]
    fn mismatch_creates_msb_dnl_signature() {
        // With unit-cap mismatch, the DNL variance at the MSB major
        // transition (code 31→32, where all weights swap) is far larger
        // than at a typical code: compare the population-average |DNL|.
        let cfg =
            SarConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4)).with_unit_cap_sigma(0.05);
        let mut r = rng(3);
        let trials = 40;
        let mut msb_abs = 0.0;
        let mut typical_abs = 0.0;
        for _ in 0..trials {
            let sar = cfg.sample(&mut r);
            let tf = sar.transfer().unwrap();
            let d = dnl(&tf);
            // Code 31's upper edge is the 31→32 major transition where
            // every DAC weight swaps (DNL index 30 == code 31).
            msb_abs += d[30].0.abs();
            // Code 20's width is a single-unit step (20→21 toggles only
            // the LSB weight) — the quiet baseline.
            typical_abs += d[19].0.abs();
        }
        assert!(
            msb_abs > 2.0 * typical_abs,
            "MSB mean |DNL| {:.4} not dominant over typical {:.4}",
            msb_abs / trials as f64,
            typical_abs / trials as f64
        );
    }

    #[test]
    fn conversion_is_monotone() {
        let cfg = SarConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
            .with_unit_cap_sigma(0.03)
            .with_offset_sigma_lsb(0.3);
        let sar = cfg.sample(&mut rng(9));
        let mut last = 0;
        let mut v = -0.1;
        while v < 6.6 {
            let c = sar.convert(Volts(v)).0;
            assert!(c >= last, "non-monotone at {v}: {c} < {last}");
            last = c;
            v += 0.002;
        }
    }

    #[test]
    fn offset_shifts_transfer() {
        let cfg =
            SarConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4)).with_offset_sigma_lsb(2.0);
        let mut r = rng(4);
        let a = cfg.sample(&mut r);
        // Positive comparator offset makes codes trip earlier (higher
        // code at the same voltage) and vice versa.
        let ideal = TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
        let v = Volts(3.2);
        let diff = a.convert(v).0 as i64 - ideal.convert(v).0 as i64;
        assert!(diff.abs() <= 4, "offset moved code by {diff}");
        assert!(a.bit_weights().len() == 6);
    }

    #[test]
    fn seeded_reproducibility() {
        let cfg =
            SarConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(6.4)).with_unit_cap_sigma(0.02);
        let a = cfg.sample(&mut rng(7));
        let b = cfg.sample(&mut rng(7));
        assert_eq!(a.bit_weights(), b.bit_weights());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        SarConfig::new(Resolution::SIX_BIT, Volts(0.0), Volts(1.0)).with_unit_cap_sigma(-0.1);
    }

    #[test]
    fn display_mentions_sar() {
        assert!(ideal_sar().to_string().contains("SAR"));
    }
}
