//! Noise sources applied during acquisition.
//!
//! §3 of the paper lists the error sources it excludes from the theory:
//! input-ramp noise, sampling **jitter** (variation of the sample
//! instants) and comparator **transition noise** (which makes the LSB
//! toggle near an edge). This module models all three so the simulator
//! can quantify their effect and exercise the deglitch filter.

use crate::dist::Normal;
use rand::Rng;

/// Noise configuration for an acquisition run.
///
/// All values default to zero (the noiseless theory of §3).
///
/// # Examples
///
/// ```
/// use bist_adc::noise::NoiseConfig;
///
/// let noise = NoiseConfig::noiseless()
///     .with_input_noise(0.001)
///     .with_jitter(1e-9);
/// assert_eq!(noise.input_noise_volts(), 0.001);
/// assert_eq!(noise.jitter_seconds(), 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NoiseConfig {
    /// RMS input-referred voltage noise (volts) added to every sample.
    input_noise_v: f64,
    /// RMS aperture jitter (seconds) perturbing each sample instant.
    jitter_s: f64,
    /// RMS comparator transition noise (volts). Modelled as an extra
    /// input-referred noise that is drawn independently per conversion —
    /// the mechanism that makes the LSB toggle when the input sits on a
    /// transition.
    transition_noise_v: f64,
}

impl NoiseConfig {
    /// No noise at all — the idealised sampling process of §3.
    pub fn noiseless() -> Self {
        NoiseConfig::default()
    }

    /// Sets the RMS input noise in volts.
    ///
    /// # Panics
    ///
    /// Panics if `rms` is negative.
    pub fn with_input_noise(mut self, rms: f64) -> Self {
        assert!(rms >= 0.0, "noise must be non-negative");
        self.input_noise_v = rms;
        self
    }

    /// Sets the RMS aperture jitter in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `rms` is negative.
    pub fn with_jitter(mut self, rms: f64) -> Self {
        assert!(rms >= 0.0, "jitter must be non-negative");
        self.jitter_s = rms;
        self
    }

    /// Sets the RMS comparator transition noise in volts.
    ///
    /// # Panics
    ///
    /// Panics if `rms` is negative.
    pub fn with_transition_noise(mut self, rms: f64) -> Self {
        assert!(rms >= 0.0, "noise must be non-negative");
        self.transition_noise_v = rms;
        self
    }

    /// RMS input noise in volts.
    pub fn input_noise_volts(&self) -> f64 {
        self.input_noise_v
    }

    /// RMS jitter in seconds.
    pub fn jitter_seconds(&self) -> f64 {
        self.jitter_s
    }

    /// RMS transition noise in volts.
    pub fn transition_noise_volts(&self) -> f64 {
        self.transition_noise_v
    }

    /// Whether every noise source is zero.
    pub fn is_noiseless(&self) -> bool {
        self.input_noise_v == 0.0 && self.jitter_s == 0.0 && self.transition_noise_v == 0.0
    }

    /// Perturbs a sample instant by jitter.
    pub fn perturb_time<R: Rng + ?Sized>(&self, t: f64, rng: &mut R) -> f64 {
        if self.jitter_s == 0.0 {
            t
        } else {
            t + Normal::new(0.0, self.jitter_s).sample(rng)
        }
    }

    /// Perturbs a sampled voltage by input and transition noise.
    pub fn perturb_voltage<R: Rng + ?Sized>(&self, v: f64, rng: &mut R) -> f64 {
        let total = (self.input_noise_v.powi(2) + self.transition_noise_v.powi(2)).sqrt();
        if total == 0.0 {
            v
        } else {
            v + Normal::new(0.0, total).sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_dsp::stats::Running;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_is_identity() {
        let n = NoiseConfig::noiseless();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(n.is_noiseless());
        assert_eq!(n.perturb_time(1.5, &mut rng), 1.5);
        assert_eq!(n.perturb_voltage(0.7, &mut rng), 0.7);
    }

    #[test]
    fn input_noise_has_configured_rms() {
        let n = NoiseConfig::noiseless().with_input_noise(0.01);
        let mut rng = StdRng::seed_from_u64(2);
        let mut acc = Running::new();
        for _ in 0..100_000 {
            acc.push(n.perturb_voltage(0.0, &mut rng));
        }
        assert!((acc.std_dev() - 0.01).abs() < 5e-4, "sd {}", acc.std_dev());
        assert!(acc.mean().abs() < 5e-4);
    }

    #[test]
    fn input_and_transition_noise_add_in_power() {
        let n = NoiseConfig::noiseless()
            .with_input_noise(0.003)
            .with_transition_noise(0.004);
        let mut rng = StdRng::seed_from_u64(3);
        let mut acc = Running::new();
        for _ in 0..100_000 {
            acc.push(n.perturb_voltage(0.0, &mut rng));
        }
        // 3-4-5 triangle: combined RMS = 0.005.
        assert!((acc.std_dev() - 0.005).abs() < 3e-4, "sd {}", acc.std_dev());
    }

    #[test]
    fn jitter_perturbs_time_only() {
        let n = NoiseConfig::noiseless().with_jitter(1e-6);
        let mut rng = StdRng::seed_from_u64(4);
        let mut acc = Running::new();
        for _ in 0..50_000 {
            acc.push(n.perturb_time(1.0, &mut rng) - 1.0);
        }
        assert!((acc.std_dev() - 1e-6).abs() < 5e-8);
        assert_eq!(n.perturb_voltage(2.0, &mut rng), 2.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_noise_panics() {
        NoiseConfig::noiseless().with_input_noise(-1.0);
    }
}
