//! The acquisition loop: stimulus → sampling instants → converter codes.
//!
//! The conversion itself is performed lazily by
//! [`crate::stream::CodeStream`]; this module holds the sampling plan
//! ([`SamplingConfig`]) and the materialised view ([`Capture`]) that
//! tests, plots and the conventional histogram baselines collect the
//! stream into. Production-path consumers (the BIST harness, the
//! Monte-Carlo engine) consume the stream directly and never allocate a
//! capture.

use crate::noise::NoiseConfig;
use crate::signal::Stimulus;
use crate::stream::CodeStream;
use crate::transfer::Adc;
use crate::types::Code;
use rand::RngCore;
use std::fmt;

/// Sampling parameters for one acquisition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Sample rate in hertz.
    pub sample_rate: f64,
    /// Number of samples to capture.
    pub samples: usize,
    /// Time of the first sample (seconds).
    pub start_time: f64,
}

impl SamplingConfig {
    /// Creates a config sampling `samples` points at `sample_rate` Hz
    /// starting at `t = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate <= 0` or `samples == 0`.
    pub fn new(sample_rate: f64, samples: usize) -> Self {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        assert!(samples > 0, "sample count must be non-zero");
        SamplingConfig {
            sample_rate,
            samples,
            start_time: 0.0,
        }
    }

    /// Sets the time of the first sample.
    pub fn with_start_time(mut self, t: f64) -> Self {
        self.start_time = t;
        self
    }

    /// The sampling interval `1/f_sample` in seconds.
    pub fn sample_period(&self) -> f64 {
        1.0 / self.sample_rate
    }

    /// The instant of sample `i`.
    pub fn sample_time(&self, i: usize) -> f64 {
        self.start_time + i as f64 * self.sample_period()
    }
}

/// A captured record of output codes plus capture metadata — the
/// materialised (`collect()`ed) view of a [`CodeStream`].
#[derive(Debug, Clone, PartialEq)]
pub struct Capture {
    codes: Vec<Code>,
    sampling: SamplingConfig,
}

impl Capture {
    /// Assembles a capture from already-collected codes (crate-internal;
    /// use [`CodeStream::capture`] or [`acquire`]/[`acquire_noisy`]).
    pub(crate) fn from_parts(codes: Vec<Code>, sampling: SamplingConfig) -> Self {
        Capture { codes, sampling }
    }

    /// The captured codes.
    pub fn codes(&self) -> &[Code] {
        &self.codes
    }

    /// The sampling configuration used.
    pub fn sampling(&self) -> &SamplingConfig {
        &self.sampling
    }

    /// Iterates over bit `b` (0 = LSB) of every code — the signal the
    /// paper's on-chip LSB monitor watches. Allocation-free; `collect()`
    /// when a materialised stream is needed.
    pub fn bits(&self, b: u32) -> impl Iterator<Item = bool> + '_ {
        self.codes.iter().map(move |c| (c.0 >> b) & 1 == 1)
    }

    /// Iterates over the codes centred to `±0.5`-normalised values for
    /// spectral analysis: `(code + 0.5)/2ⁿ − 0.5`, given the resolution
    /// implied by `bits`.
    pub fn normalized(&self, bits: u32) -> impl Iterator<Item = f64> + '_ {
        let n = (1u64 << bits) as f64;
        self.codes.iter().map(move |c| (c.0 as f64 + 0.5) / n - 0.5)
    }

    /// Consumes the capture, returning the code vector.
    pub fn into_codes(self) -> Vec<Code> {
        self.codes
    }
}

impl fmt::Display for Capture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} samples @ {} Hz",
            self.codes.len(),
            self.sampling.sample_rate
        )
    }
}

/// Samples `stimulus` through `adc` without noise (the deterministic
/// sampling process assumed by the §3 theory) and materialises the
/// result. Thin wrapper over [`CodeStream::noiseless`].
pub fn acquire<A: Adc, S: Stimulus>(adc: &A, stimulus: &S, sampling: SamplingConfig) -> Capture {
    CodeStream::noiseless(adc, stimulus, sampling).capture()
}

/// Samples `stimulus` through `adc` with the given noise sources and
/// materialises the result. Thin wrapper over [`CodeStream::noisy`].
///
/// Jitter perturbs each sample instant; input and transition noise
/// perturb the sampled voltage. With [`NoiseConfig::noiseless`] this is
/// identical to [`acquire`].
pub fn acquire_noisy<A: Adc, S: Stimulus, R: RngCore + ?Sized>(
    adc: &A,
    stimulus: &S,
    sampling: SamplingConfig,
    noise: &NoiseConfig,
    rng: &mut R,
) -> Capture {
    CodeStream::noisy(adc, stimulus, sampling, noise, rng).capture()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{Dc, Ramp};
    use crate::transfer::TransferFunction;
    use crate::types::{Resolution, Volts};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn six_bit() -> TransferFunction {
        TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
    }

    #[test]
    fn sampling_config_times() {
        let s = SamplingConfig::new(1000.0, 5).with_start_time(1.0);
        assert_eq!(s.sample_period(), 0.001);
        assert_eq!(s.sample_time(0), 1.0);
        assert!((s.sample_time(3) - 1.003).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sample rate must be positive")]
    fn zero_rate_panics() {
        SamplingConfig::new(0.0, 10);
    }

    #[test]
    #[should_panic(expected = "sample count must be non-zero")]
    fn zero_samples_panics() {
        SamplingConfig::new(1.0, 0);
    }

    #[test]
    fn dc_acquisition_is_constant() {
        let adc = six_bit();
        let cap = acquire(&adc, &Dc(Volts(3.25)), SamplingConfig::new(1e3, 16));
        assert!(cap.codes().iter().all(|&c| c == Code(32)));
    }

    #[test]
    fn ramp_acquisition_walks_all_codes() {
        let adc = six_bit();
        // 1 V/s ramp, 1 kHz sampling: 6.4 s sweep = 6400 samples, 100/code.
        let ramp = Ramp::new(Volts(-0.05), 1.0);
        let cap = acquire(&adc, &ramp, SamplingConfig::new(1e3, 6600));
        let raw: Vec<u32> = cap.codes().iter().map(|c| c.0).collect();
        assert_eq!(raw[0], 0);
        assert_eq!(*raw.last().unwrap(), 63);
        // Monotone non-decreasing.
        assert!(raw.windows(2).all(|w| w[0] <= w[1]));
        // Every code visited ~100 times.
        let mut counts = [0u32; 64];
        for c in &raw {
            counts[*c as usize] += 1;
        }
        for (k, &c) in counts.iter().enumerate().take(63).skip(1) {
            assert!((95..=105).contains(&c), "code {k}: {c} samples");
        }
    }

    #[test]
    fn lsb_stream_alternates_on_ramp() {
        let adc = six_bit();
        let ramp = Ramp::new(Volts(0.05), 1.0);
        let cap = acquire(&adc, &ramp, SamplingConfig::new(1e3, 6300));
        let lsb: Vec<bool> = cap.bits(0).collect();
        // The LSB toggles once per code: count transitions ≈ codes crossed.
        let transitions = lsb.windows(2).filter(|w| w[0] != w[1]).count();
        let codes_crossed = cap.codes().last().unwrap().0 - cap.codes()[0].0;
        assert_eq!(transitions as u32, codes_crossed);
    }

    #[test]
    fn msb_stream_is_bit_five() {
        let adc = six_bit();
        let cap = acquire(&adc, &Dc(Volts(5.0)), SamplingConfig::new(1e3, 4));
        // 5.0 V → code 50 = 0b110010: bit 5 is 1.
        assert!(cap.bits(5).all(|b| b));
        assert!(cap.bits(0).all(|b| !b));
    }

    #[test]
    fn normalized_is_centered() {
        let adc = six_bit();
        let cap = acquire(&adc, &Dc(Volts(3.25)), SamplingConfig::new(1e3, 2));
        // code 32 → (32.5)/64 - 0.5 = 0.0078125
        let first = cap.normalized(6).next().unwrap();
        assert!((first - 0.0078125).abs() < 1e-12);
    }

    #[test]
    fn noiseless_noisy_acquisition_matches_pure() {
        let adc = six_bit();
        let ramp = Ramp::new(Volts(0.0), 1.0);
        let sampling = SamplingConfig::new(1e3, 100);
        let mut rng = StdRng::seed_from_u64(1);
        let a = acquire(&adc, &ramp, sampling);
        let b = acquire_noisy(&adc, &ramp, sampling, &NoiseConfig::noiseless(), &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn transition_noise_makes_lsb_toggle() {
        let adc = six_bit();
        // Park the input exactly on a transition: noiseless output is
        // constant, transition noise makes it flip between codes.
        let dc = Dc(Volts(0.2));
        let sampling = SamplingConfig::new(1e3, 1000);
        let mut rng = StdRng::seed_from_u64(2);
        let clean = acquire(&adc, &dc, sampling);
        let toggles = |cap: &Capture| {
            let bits: Vec<bool> = cap.bits(0).collect();
            bits.windows(2).filter(|w| w[0] != w[1]).count()
        };
        assert_eq!(toggles(&clean), 0);
        let noise = NoiseConfig::noiseless().with_transition_noise(0.02);
        let noisy = acquire_noisy(&adc, &dc, sampling, &noise, &mut rng);
        assert!(toggles(&noisy) > 100, "expected heavy LSB toggling");
    }

    #[test]
    fn jitter_blurs_code_boundaries() {
        let adc = six_bit();
        let ramp = Ramp::new(Volts(0.0), 100.0); // fast ramp: jitter matters
        let sampling = SamplingConfig::new(1e5, 1000);
        let mut rng = StdRng::seed_from_u64(3);
        let clean = acquire(&adc, &ramp, sampling);
        let noise = NoiseConfig::noiseless().with_jitter(2e-6);
        let jittered = acquire_noisy(&adc, &ramp, sampling, &noise, &mut rng);
        assert_ne!(clean, jittered);
        // But the overall trajectory is still a ramp of the same span.
        assert_eq!(clean.codes().last(), jittered.codes().last());
    }

    #[test]
    fn capture_display() {
        let adc = six_bit();
        let cap = acquire(&adc, &Dc(Volts(1.0)), SamplingConfig::new(250.0, 8));
        assert_eq!(cap.to_string(), "8 samples @ 250 Hz");
    }
}
