//! Lazy, single-pass acquisition: stimulus → noise → converter codes.
//!
//! The paper's BIST is a *streaming* design — the on-chip LSB monitor
//! and counters consume the ramp capture code by code, with no sample
//! memory. [`CodeStream`] is the simulation equivalent: an iterator that
//! fuses stimulus evaluation, noise injection and conversion, producing
//! one [`Code`] per sample instant without materialising the capture.
//! [`crate::sampler::Capture`] is now just a `collect()`ed view of this
//! stream, kept for tests and plotting.
//!
//! The per-sample operation is identical to the historical two-pass
//! path (perturb the instant, perturb the voltage, convert), and noise
//! draws happen in sample order — so streaming consumers observe
//! bit-for-bit the same codes as a materialised capture from the same
//! RNG state.

use crate::noise::NoiseConfig;
use crate::sampler::{Capture, SamplingConfig};
use crate::signal::Stimulus;
use crate::transfer::Adc;
use crate::types::{Code, Volts};
use rand::RngCore;
use std::iter::FusedIterator;

/// The RNG type of noiseless streams. [`NoiseConfig::noiseless`] never
/// draws, so this generator is never sampled.
///
/// # Panics
///
/// Panics if a draw is attempted — which would indicate a noise source
/// was configured without supplying a real generator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRng;

impl RngCore for NullRng {
    fn next_u64(&mut self) -> u64 {
        panic!("noiseless code stream must not draw randomness");
    }
}

/// A lazy acquisition: yields the converter's output codes one sample at
/// a time, evaluating the stimulus, injecting noise and converting on
/// demand.
///
/// # Examples
///
/// ```
/// use bist_adc::sampler::SamplingConfig;
/// use bist_adc::signal::Ramp;
/// use bist_adc::stream::CodeStream;
/// use bist_adc::transfer::TransferFunction;
/// use bist_adc::types::{Resolution, Volts};
///
/// let adc = TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
/// let ramp = Ramp::new(Volts(0.0), 1.0);
/// let stream = CodeStream::noiseless(&adc, &ramp, SamplingConfig::new(1e3, 6400));
/// // Single pass, no sample memory: fold the codes directly.
/// let distinct = stream
///     .fold((0u32, None), |(n, prev), c| {
///         (n + u32::from(prev != Some(c)), Some(c))
///     })
///     .0;
/// assert_eq!(distinct, 64); // the ramp walks every code once
/// ```
#[derive(Debug)]
pub struct CodeStream<'a, A: ?Sized, S: ?Sized, R> {
    adc: &'a A,
    stimulus: &'a S,
    sampling: SamplingConfig,
    noise: NoiseConfig,
    rng: R,
    next: usize,
}

impl<'a, A: Adc + ?Sized, S: Stimulus + ?Sized> CodeStream<'a, A, S, NullRng> {
    /// A noiseless stream: the deterministic sampling process assumed by
    /// the §3 theory.
    pub fn noiseless(adc: &'a A, stimulus: &'a S, sampling: SamplingConfig) -> Self {
        CodeStream {
            adc,
            stimulus,
            sampling,
            noise: NoiseConfig::noiseless(),
            rng: NullRng,
            next: 0,
        }
    }
}

impl<'a, A: Adc + ?Sized, S: Stimulus + ?Sized, R: RngCore + ?Sized>
    CodeStream<'a, A, S, &'a mut R>
{
    /// A stream with the given noise sources: jitter perturbs each
    /// sample instant, input and transition noise perturb the sampled
    /// voltage. With [`NoiseConfig::noiseless`] this is identical to
    /// [`CodeStream::noiseless`] (and draws nothing from `rng`).
    pub fn noisy(
        adc: &'a A,
        stimulus: &'a S,
        sampling: SamplingConfig,
        noise: &NoiseConfig,
        rng: &'a mut R,
    ) -> Self {
        CodeStream {
            adc,
            stimulus,
            sampling,
            noise: *noise,
            rng,
            next: 0,
        }
    }
}

impl<A: Adc + ?Sized, S: Stimulus + ?Sized, R: RngCore> CodeStream<'_, A, S, R> {
    /// The sampling plan driving this stream.
    pub fn sampling(&self) -> &SamplingConfig {
        &self.sampling
    }

    /// Materialises the remaining codes into a [`Capture`] — the view
    /// used by tests, plots and the conventional histogram baselines.
    ///
    /// On a partially consumed stream the capture's sampling metadata
    /// is adjusted to cover only the remaining samples (start time and
    /// count), so `codes()[i]` always corresponds to
    /// `sampling().sample_time(i)`.
    pub fn capture(self) -> Capture {
        let mut sampling = self.sampling;
        sampling.start_time = self.sampling.sample_time(self.next);
        sampling.samples -= self.next;
        Capture::from_parts(self.collect(), sampling)
    }
}

impl<A: Adc + ?Sized, S: Stimulus + ?Sized, R: RngCore> Iterator for CodeStream<'_, A, S, R> {
    type Item = Code;

    fn next(&mut self) -> Option<Code> {
        if self.next >= self.sampling.samples {
            return None;
        }
        let t = self
            .noise
            .perturb_time(self.sampling.sample_time(self.next), &mut self.rng);
        let v = self
            .noise
            .perturb_voltage(self.stimulus.value(t).0, &mut self.rng);
        self.next += 1;
        Some(self.adc.convert(Volts(v)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.sampling.samples - self.next;
        (left, Some(left))
    }
}

impl<A: Adc + ?Sized, S: Stimulus + ?Sized, R: RngCore> ExactSizeIterator
    for CodeStream<'_, A, S, R>
{
}

impl<A: Adc + ?Sized, S: Stimulus + ?Sized, R: RngCore> FusedIterator for CodeStream<'_, A, S, R> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{acquire, acquire_noisy};
    use crate::signal::Ramp;
    use crate::transfer::TransferFunction;
    use crate::types::Resolution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn six_bit() -> TransferFunction {
        TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
    }

    #[test]
    fn stream_matches_materialized_capture() {
        let adc = six_bit();
        let ramp = Ramp::new(Volts(-0.1), 1.0);
        let sampling = SamplingConfig::new(1e3, 7000);
        let cap = acquire(&adc, &ramp, sampling);
        let streamed: Vec<Code> = CodeStream::noiseless(&adc, &ramp, sampling).collect();
        assert_eq!(cap.codes(), &streamed[..]);
    }

    #[test]
    fn noisy_stream_matches_noisy_capture_from_same_seed() {
        let adc = six_bit();
        let ramp = Ramp::new(Volts(0.0), 2.0);
        let sampling = SamplingConfig::new(1e4, 5000);
        let noise = NoiseConfig::noiseless()
            .with_transition_noise(0.01)
            .with_jitter(1e-6);
        let mut rng_a = StdRng::seed_from_u64(42);
        let mut rng_b = StdRng::seed_from_u64(42);
        let cap = acquire_noisy(&adc, &ramp, sampling, &noise, &mut rng_a);
        let streamed: Vec<Code> =
            CodeStream::noisy(&adc, &ramp, sampling, &noise, &mut rng_b).collect();
        assert_eq!(cap.codes(), &streamed[..]);
    }

    #[test]
    fn stream_is_exact_size() {
        let adc = six_bit();
        let ramp = Ramp::new(Volts(0.0), 1.0);
        let mut s = CodeStream::noiseless(&adc, &ramp, SamplingConfig::new(1e3, 10));
        assert_eq!(s.len(), 10);
        s.next();
        s.next();
        assert_eq!(s.len(), 8);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn capture_view_keeps_sampling_metadata() {
        let adc = six_bit();
        let ramp = Ramp::new(Volts(0.0), 1.0);
        let sampling = SamplingConfig::new(250.0, 8);
        let cap = CodeStream::noiseless(&adc, &ramp, sampling).capture();
        assert_eq!(cap.sampling(), &sampling);
        assert_eq!(cap.codes().len(), 8);
    }

    #[test]
    fn capture_after_partial_consumption_keeps_consistent_metadata() {
        let adc = six_bit();
        let ramp = Ramp::new(Volts(0.0), 1.0);
        let sampling = SamplingConfig::new(1e3, 10);
        let mut s = CodeStream::noiseless(&adc, &ramp, sampling);
        let head: Vec<Code> = s.by_ref().take(4).collect();
        let cap = s.capture();
        assert_eq!(cap.codes().len(), 6);
        assert_eq!(cap.sampling().samples, 6);
        assert!((cap.sampling().start_time - sampling.sample_time(4)).abs() < 1e-15);
        // codes()[i] still pairs with sampling().sample_time(i).
        let full = acquire(&adc, &ramp, sampling);
        assert_eq!(&full.codes()[..4], &head[..]);
        assert_eq!(&full.codes()[4..], cap.codes());
    }

    #[test]
    #[should_panic(expected = "must not draw")]
    fn null_rng_refuses_draws() {
        use rand::Rng;
        let mut r = NullRng;
        let _: u64 = r.gen_range(0u64..10);
    }
}
