//! Test stimuli: ramps, sawtooths, sines, triangles and DC.
//!
//! The paper's static BIST drives the converter with a slow voltage ramp
//! whose slope `U` sets the voltage step between samples,
//! `Δs = U/f_sample` (Eq. 5). On-chip ramp generation is out of the
//! paper's scope (it cites DeWitt and Roberts for that), so the ramp here
//! is ideal-with-impairments: a configurable slope error reproduces the
//! paper's observation that the measured ramp was "slightly too steep"
//! (Δs ≈ 0.002 LSB smaller than intended), and a bow term models
//! generator non-linearity.

use crate::types::Volts;
use std::f64::consts::TAU;
use std::fmt;

/// A deterministic voltage stimulus evaluated at absolute time `t`
/// (seconds). Noise is added by the acquisition layer, not here, so
/// stimuli stay pure.
pub trait Stimulus {
    /// The stimulus voltage at time `t`.
    fn value(&self, t: f64) -> Volts;
}

impl<S: Stimulus + ?Sized> Stimulus for &S {
    fn value(&self, t: f64) -> Volts {
        (**self).value(t)
    }
}

/// A constant (DC) level.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dc(pub Volts);

impl Stimulus for Dc {
    fn value(&self, _t: f64) -> Volts {
        self.0
    }
}

/// A single linear ramp `v(t) = start + slope·t`, with optional relative
/// slope error and quadratic bow.
///
/// # Examples
///
/// ```
/// use bist_adc::signal::{Ramp, Stimulus};
/// use bist_adc::types::Volts;
///
/// let ramp = Ramp::new(Volts(0.0), 2.0); // 2 V/s
/// assert_eq!(ramp.value(1.5), Volts(3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ramp {
    start: Volts,
    slope: f64,
    slope_error_rel: f64,
    /// Peak bow (volts) applied as a parabola over `bow_span` seconds.
    bow: f64,
    bow_span: f64,
}

impl Ramp {
    /// Creates an ideal ramp starting at `start` with `slope` volts per
    /// second.
    ///
    /// # Panics
    ///
    /// Panics if `slope` is not finite or is zero.
    pub fn new(start: Volts, slope: f64) -> Self {
        assert!(
            slope.is_finite() && slope != 0.0,
            "slope must be finite and non-zero"
        );
        Ramp {
            start,
            slope,
            slope_error_rel: 0.0,
            bow: 0.0,
            bow_span: 1.0,
        }
    }

    /// Adds a relative slope error: the effective slope becomes
    /// `slope·(1 + err)`. The paper's measurement discrepancy corresponds
    /// to a small positive `err` (ramp slightly too steep).
    pub fn with_slope_error(mut self, err: f64) -> Self {
        self.slope_error_rel = err;
        self
    }

    /// Adds a parabolic bow: the deviation is zero at `t = 0` and
    /// `t = span`, peaking at `bow` volts in the middle — a simple model
    /// of ramp-generator non-linearity.
    ///
    /// # Panics
    ///
    /// Panics if `span` is not positive.
    pub fn with_bow(mut self, bow: Volts, span: f64) -> Self {
        assert!(span > 0.0, "bow span must be positive");
        self.bow = bow.0;
        self.bow_span = span;
        self
    }

    /// The effective slope including the slope error, volts/second.
    pub fn effective_slope(&self) -> f64 {
        self.slope * (1.0 + self.slope_error_rel)
    }

    /// The nominal (requested) slope, volts/second.
    pub fn nominal_slope(&self) -> f64 {
        self.slope
    }

    /// Time at which the ideal ramp crosses voltage `v`.
    pub fn time_of(&self, v: Volts) -> f64 {
        (v.0 - self.start.0) / self.effective_slope()
    }
}

impl Stimulus for Ramp {
    fn value(&self, t: f64) -> Volts {
        let x = t / self.bow_span;
        let bow = 4.0 * self.bow * x * (1.0 - x);
        Volts(self.start.0 + self.effective_slope() * t + bow)
    }
}

/// A periodic sawtooth sweeping `[low, high)` with period `period`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sawtooth {
    low: Volts,
    high: Volts,
    period: f64,
}

impl Sawtooth {
    /// Creates a sawtooth between `low` and `high` with the given period
    /// in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or `period <= 0`.
    pub fn new(low: Volts, high: Volts, period: f64) -> Self {
        assert!(low.0 < high.0, "low must be below high");
        assert!(period > 0.0, "period must be positive");
        Sawtooth { low, high, period }
    }

    /// The sweep rate in volts per second.
    pub fn slope(&self) -> f64 {
        (self.high.0 - self.low.0) / self.period
    }
}

impl Stimulus for Sawtooth {
    fn value(&self, t: f64) -> Volts {
        let phase = (t / self.period).rem_euclid(1.0);
        Volts(self.low.0 + (self.high.0 - self.low.0) * phase)
    }
}

/// A symmetric triangle wave between `low` and `high`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    low: Volts,
    high: Volts,
    period: f64,
}

impl Triangle {
    /// Creates a triangle wave with the given period in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or `period <= 0`.
    pub fn new(low: Volts, high: Volts, period: f64) -> Self {
        assert!(low.0 < high.0, "low must be below high");
        assert!(period > 0.0, "period must be positive");
        Triangle { low, high, period }
    }
}

impl Stimulus for Triangle {
    fn value(&self, t: f64) -> Volts {
        let phase = (t / self.period).rem_euclid(1.0);
        let frac = if phase < 0.5 {
            2.0 * phase
        } else {
            2.0 * (1.0 - phase)
        };
        Volts(self.low.0 + (self.high.0 - self.low.0) * frac)
    }
}

/// A sine `offset + amplitude·sin(2πft + φ)` — the stimulus for dynamic
/// (THD/SINAD) tests and the sine-histogram baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SineWave {
    amplitude: f64,
    frequency: f64,
    phase: f64,
    offset: Volts,
}

impl SineWave {
    /// Creates a sine with amplitude (volts), frequency (Hz), phase
    /// (radians) and offset.
    ///
    /// # Panics
    ///
    /// Panics if `amplitude < 0` or `frequency <= 0`.
    pub fn new(amplitude: f64, frequency: f64, phase: f64, offset: Volts) -> Self {
        assert!(amplitude >= 0.0, "amplitude must be non-negative");
        assert!(frequency > 0.0, "frequency must be positive");
        SineWave {
            amplitude,
            frequency,
            phase,
            offset,
        }
    }

    /// A sine that exactly spans the range `[low, high]` (full-scale
    /// stimulus for histogram and FFT tests), centred mid-range.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or `frequency <= 0`.
    pub fn full_scale(low: Volts, high: Volts, frequency: f64) -> Self {
        assert!(low.0 < high.0, "low must be below high");
        SineWave::new(
            (high.0 - low.0) / 2.0,
            frequency,
            0.0,
            Volts((low.0 + high.0) / 2.0),
        )
    }

    /// The amplitude in volts.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// The frequency in hertz.
    pub fn frequency(&self) -> f64 {
        self.frequency
    }

    /// The DC offset.
    pub fn offset(&self) -> Volts {
        self.offset
    }

    /// Chooses a coherent frequency for `n` samples at rate `fs` with
    /// `cycles` full periods in the record (`cycles` should be odd and
    /// coprime with `n` for best code coverage).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `fs <= 0`.
    pub fn coherent_frequency(cycles: u32, n: usize, fs: f64) -> f64 {
        assert!(n > 0, "record length must be non-zero");
        assert!(fs > 0.0, "sample rate must be positive");
        cycles as f64 * fs / n as f64
    }
}

impl Stimulus for SineWave {
    fn value(&self, t: f64) -> Volts {
        Volts(self.offset.0 + self.amplitude * (TAU * self.frequency * t + self.phase).sin())
    }
}

impl fmt::Display for SineWave {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sine {} Vpk @ {} Hz offset {}",
            self.amplitude, self.frequency, self.offset
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let s = Dc(Volts(1.2));
        assert_eq!(s.value(0.0), Volts(1.2));
        assert_eq!(s.value(1e9), Volts(1.2));
    }

    #[test]
    fn ramp_is_linear() {
        let r = Ramp::new(Volts(-1.0), 0.5);
        assert_eq!(r.value(0.0), Volts(-1.0));
        assert_eq!(r.value(2.0), Volts(0.0));
        assert_eq!(r.value(4.0), Volts(1.0));
    }

    #[test]
    fn ramp_slope_error_scales_slope() {
        let r = Ramp::new(Volts(0.0), 1.0).with_slope_error(0.1);
        assert!((r.effective_slope() - 1.1).abs() < 1e-15);
        assert!((r.value(1.0).0 - 1.1).abs() < 1e-15);
        assert_eq!(r.nominal_slope(), 1.0);
    }

    #[test]
    fn ramp_time_of_inverts_value() {
        let r = Ramp::new(Volts(0.5), 2.0).with_slope_error(-0.05);
        let t = r.time_of(Volts(3.0));
        assert!((r.value(t).0 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ramp_bow_zero_at_ends_peak_mid() {
        let r = Ramp::new(Volts(0.0), 1.0).with_bow(Volts(0.1), 10.0);
        assert!((r.value(0.0).0 - 0.0).abs() < 1e-12);
        assert!((r.value(10.0).0 - 10.0).abs() < 1e-12);
        // At mid-span the bow adds its full 0.1 V.
        assert!((r.value(5.0).0 - 5.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "slope must be finite and non-zero")]
    fn ramp_zero_slope_panics() {
        Ramp::new(Volts(0.0), 0.0);
    }

    #[test]
    fn sawtooth_wraps() {
        let s = Sawtooth::new(Volts(0.0), Volts(1.0), 2.0);
        assert_eq!(s.value(0.0), Volts(0.0));
        assert_eq!(s.value(1.0), Volts(0.5));
        assert_eq!(s.value(2.0), Volts(0.0)); // wrapped
        assert!((s.slope() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn sawtooth_negative_time() {
        let s = Sawtooth::new(Volts(0.0), Volts(1.0), 1.0);
        // rem_euclid keeps the phase in [0, 1).
        assert!((s.value(-0.25).0 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn triangle_up_then_down() {
        let s = Triangle::new(Volts(0.0), Volts(2.0), 4.0);
        assert_eq!(s.value(0.0), Volts(0.0));
        assert_eq!(s.value(1.0), Volts(1.0));
        assert_eq!(s.value(2.0), Volts(2.0));
        assert_eq!(s.value(3.0), Volts(1.0));
        assert_eq!(s.value(4.0), Volts(0.0));
    }

    #[test]
    fn sine_hits_extremes() {
        let s = SineWave::new(1.0, 1.0, 0.0, Volts(0.5));
        assert!((s.value(0.25).0 - 1.5).abs() < 1e-12);
        assert!((s.value(0.75).0 + 0.5).abs() < 1e-12);
    }

    #[test]
    fn full_scale_sine_spans_range() {
        let s = SineWave::full_scale(Volts(0.0), Volts(6.4), 10.0);
        assert!((s.amplitude() - 3.2).abs() < 1e-12);
        assert!((s.offset().0 - 3.2).abs() < 1e-12);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..1000 {
            let v = s.value(i as f64 * 1e-4).0;
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!((-1e-9..0.05).contains(&lo));
        assert!(hi <= 6.4 + 1e-9 && hi > 6.35);
    }

    #[test]
    fn coherent_frequency_gives_integer_cycles() {
        let fs = 1e6;
        let n = 4096;
        let f = SineWave::coherent_frequency(1021, n, fs);
        let cycles = f * n as f64 / fs;
        assert!((cycles - 1021.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "amplitude must be non-negative")]
    fn sine_negative_amplitude_panics() {
        SineWave::new(-1.0, 1.0, 0.0, Volts(0.0));
    }

    #[test]
    fn stimulus_by_reference() {
        fn takes_stim<S: Stimulus>(s: S) -> Volts {
            s.value(0.0)
        }
        let r = Ramp::new(Volts(1.0), 1.0);
        assert_eq!(takes_stim(r), Volts(1.0));
    }
}
