//! Static linearity metrics computed directly from a transfer function:
//! DNL, INL, offset error, gain error, missing codes and monotonicity.
//!
//! These are the "static" parameters of the paper's §2. Computed from the
//! *true* transition levels they constitute the ground truth that the
//! BIST (which only observes sampled counts) is judged against.

use crate::transfer::TransferFunction;
use crate::types::Lsb;
use std::fmt;

/// Differential non-linearity per inner code, in LSB:
/// `DNL[k] = (W[k] − q)/q` for codes `1..=2ⁿ−2`.
///
/// # Examples
///
/// ```
/// use bist_adc::metrics::dnl;
/// use bist_adc::transfer::TransferFunction;
/// use bist_adc::types::{Resolution, Volts};
///
/// let tf = TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
/// assert!(dnl(&tf).iter().all(|d| d.0.abs() < 1e-9));
/// ```
pub fn dnl(tf: &TransferFunction) -> Vec<Lsb> {
    tf.code_widths_lsb()
        .into_iter()
        .map(|w| Lsb(w.0 - 1.0))
        .collect()
}

/// Integral non-linearity at each transition, in LSB, endpoint-corrected:
/// the deviation of `T[k]` from the straight line through the first and
/// last transitions.
///
/// Returns one value per transition (`k = 1..=2ⁿ−1`); the endpoint
/// correction forces the first and last entries to zero.
pub fn inl(tf: &TransferFunction) -> Vec<Lsb> {
    let t = tf.transitions();
    let n = t.len();
    if n < 2 {
        return vec![Lsb(0.0); n];
    }
    let first = t[0];
    let last = t[n - 1];
    let q_eff = (last - first) / (n - 1) as f64;
    t.iter()
        .enumerate()
        .map(|(i, &x)| Lsb((x - (first + i as f64 * q_eff)) / q_eff))
        .collect()
}

/// INL computed by accumulating DNL (the way the paper's on-chip block
/// does it: *"The INL of each transition is determined from the DNL test
/// by successively adding the determined DNL values of each code"*).
///
/// Returns one value per inner-code boundary: entry `k` is
/// `Σ_{j=1..=k} DNL[j]`, the INL at transition `k+1` relative to
/// transition 1 assuming an ideal LSB.
pub fn inl_from_dnl(dnl_values: &[Lsb]) -> Vec<Lsb> {
    let mut acc = 0.0;
    dnl_values
        .iter()
        .map(|d| {
            acc += d.0;
            Lsb(acc)
        })
        .collect()
}

/// Offset error in LSB: deviation of the first transition from its ideal
/// position (`low + 1·q`).
pub fn offset_error(tf: &TransferFunction) -> Lsb {
    let q = tf.lsb_size().0;
    let ideal_first = tf.low().0 + q;
    Lsb((tf.transitions()[0] - ideal_first) / q)
}

/// Gain error in LSB: deviation of the *span* of the transfer (first to
/// last transition) from the ideal span of `2ⁿ − 2` LSB.
pub fn gain_error(tf: &TransferFunction) -> Lsb {
    let q = tf.lsb_size().0;
    let t = tf.transitions();
    let span = t[t.len() - 1] - t[0];
    let ideal_span = (t.len() - 1) as f64 * q;
    Lsb((span - ideal_span) / q)
}

/// Indices (inner codes) whose width is below `threshold` LSB —
/// effectively missing codes. The conventional threshold is a width of
/// 0 (DNL = −1), but histogram tests often use a small positive value.
pub fn missing_codes(tf: &TransferFunction, threshold: Lsb) -> Vec<u32> {
    tf.code_widths_lsb()
        .iter()
        .enumerate()
        .filter(|(_, w)| w.0 <= threshold.0)
        .map(|(i, _)| i as u32 + 1)
        .collect()
}

/// Whether the transfer is monotonic. Transfer functions built from
/// sorted transitions always are; this exists for characterised
/// (swept) transfers of faulty devices.
pub fn is_monotonic(tf: &TransferFunction) -> bool {
    tf.transitions().windows(2).all(|w| w[0] <= w[1])
}

/// Summary of the static linearity of one converter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticSummary {
    /// Worst-case |DNL| over the inner codes, in LSB.
    pub peak_dnl: Lsb,
    /// Worst-case |INL| (endpoint-corrected), in LSB.
    pub peak_inl: Lsb,
    /// Offset error in LSB.
    pub offset: Lsb,
    /// Gain error in LSB.
    pub gain: Lsb,
    /// Number of missing codes (width ≤ 0).
    pub missing: usize,
}

impl StaticSummary {
    /// Computes the summary for a transfer function.
    pub fn of(tf: &TransferFunction) -> Self {
        let d = dnl(tf);
        let i = inl(tf);
        let peak = |xs: &[Lsb]| Lsb(xs.iter().map(|x| x.0.abs()).fold(0.0f64, f64::max));
        StaticSummary {
            peak_dnl: peak(&d),
            peak_inl: peak(&i),
            offset: offset_error(tf),
            gain: gain_error(tf),
            missing: missing_codes(tf, Lsb(0.0)).len(),
        }
    }
}

impl fmt::Display for StaticSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DNL {:.3} LSB, INL {:.3} LSB, offset {:.3} LSB, gain {:.3} LSB, {} missing",
            self.peak_dnl.0, self.peak_inl.0, self.offset.0, self.gain.0, self.missing
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Resolution, Volts};

    fn ideal() -> TransferFunction {
        TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
    }

    fn with_widths(widths_lsb: &[f64]) -> TransferFunction {
        // Build an (n+?)-code transfer with given inner-code widths.
        let n_codes = widths_lsb.len() + 2;
        let bits = (n_codes as f64).log2().ceil() as u32;
        let res = Resolution::new(bits.max(2)).unwrap();
        let q = 0.1;
        let mut t = vec![q];
        for &w in widths_lsb {
            t.push(t.last().unwrap() + w * q);
        }
        while t.len() < res.transition_count() as usize {
            t.push(t.last().unwrap() + q);
        }
        TransferFunction::from_transitions(res, Volts(0.0), Volts(q * res.code_count() as f64), t)
    }

    #[test]
    fn ideal_has_zero_metrics() {
        let s = StaticSummary::of(&ideal());
        assert!(s.peak_dnl.0 < 1e-9);
        assert!(s.peak_inl.0 < 1e-9);
        assert!(s.offset.0.abs() < 1e-9);
        assert!(s.gain.0.abs() < 1e-9);
        assert_eq!(s.missing, 0);
    }

    #[test]
    fn dnl_of_known_widths() {
        let tf = with_widths(&[1.0, 1.5, 0.5, 1.0]);
        let d = dnl(&tf);
        assert!((d[0].0 - 0.0).abs() < 1e-9);
        assert!((d[1].0 - 0.5).abs() < 1e-9);
        assert!((d[2].0 + 0.5).abs() < 1e-9);
    }

    #[test]
    fn inl_from_dnl_accumulates() {
        let d = vec![Lsb(0.1), Lsb(-0.2), Lsb(0.3)];
        let i = inl_from_dnl(&d);
        assert!((i[0].0 - 0.1).abs() < 1e-12);
        assert!((i[1].0 + 0.1).abs() < 1e-12);
        assert!((i[2].0 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn endpoint_inl_zero_at_ends() {
        let tf = with_widths(&[1.2, 0.8, 1.1, 0.9]);
        let i = inl(&tf);
        assert!(i[0].0.abs() < 1e-9);
        assert!(i.last().unwrap().0.abs() < 1e-9);
    }

    #[test]
    fn inl_detects_bow() {
        // A transfer with a parabolic bow: INL peaks mid-range.
        let res = Resolution::new(6).unwrap();
        let q = 0.1;
        let n = res.transition_count() as usize;
        let t: Vec<f64> = (1..=n)
            .map(|k| {
                let x = k as f64 / n as f64;
                k as f64 * q + 4.0 * 0.05 * x * (1.0 - x) // 0.5 LSB peak bow
            })
            .collect();
        let tf = TransferFunction::from_transitions(res, Volts(0.0), Volts(6.4), t);
        let i = inl(&tf);
        let peak = i.iter().map(|x| x.0.abs()).fold(0.0f64, f64::max);
        assert!((peak - 0.5).abs() < 0.05, "peak {peak}");
        // Peak near the middle.
        let mid = i[n / 2].0.abs();
        assert!((mid - peak).abs() < 0.05);
    }

    #[test]
    fn offset_error_detects_shift() {
        let tf = ideal().with_offset(Volts(0.05));
        assert!((offset_error(&tf).0 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn gain_error_detects_scale() {
        let tf = ideal().with_gain(1.01);
        // Span stretches by 1 %: 62 ideal LSB * 0.01 = 0.62 LSB.
        assert!((gain_error(&tf).0 - 0.62).abs() < 1e-6);
        // Offset error also moves (first transition scaled).
        assert!((offset_error(&tf).0 - 0.01).abs() < 1e-6);
    }

    #[test]
    fn missing_codes_found() {
        let tf = with_widths(&[1.0, 0.0, 1.0]);
        let missing = missing_codes(&tf, Lsb(0.0));
        assert_eq!(missing, vec![2]);
        let s = StaticSummary::of(&tf);
        assert_eq!(s.missing, 1);
        assert!((s.peak_dnl.0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monotonic_check() {
        assert!(is_monotonic(&ideal()));
    }

    #[test]
    fn inl_from_dnl_matches_direct_inl_shape() {
        // For a zero-offset, zero-gain-error transfer the accumulated-DNL
        // INL equals the uncorrected INL at interior transitions.
        let tf = with_widths(&[1.1, 0.9, 1.05, 0.95]);
        let acc = inl_from_dnl(&dnl(&tf));
        // Direct deviation of T[k+1] from T[1] + k ideal LSB:
        let q = tf.lsb_size().0;
        let t = tf.transitions();
        for (k, a) in acc.iter().enumerate().take(4) {
            let direct = (t[k + 1] - t[0] - (k + 1) as f64 * q) / q;
            assert!((a.0 - direct).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn summary_display() {
        let s = StaticSummary::of(&ideal());
        assert!(s.to_string().contains("DNL"));
    }
}
