//! Transfer functions described by their transition levels.
//!
//! An `n`-bit converter has `2ⁿ − 1` transition levels `T[k]`
//! (`k = 1..=2ⁿ−1`): the input voltages at which the output code steps
//! from `k−1` to `k`. Code `k`'s width is `T[k+1] − T[k]` (defined for the
//! inner codes `1..=2ⁿ−2`). This representation is the common currency of
//! the whole reproduction: behavioural converters produce one, static
//! metrics are computed from one, and the BIST observes it through the
//! sampling process.

use crate::types::{Code, Lsb, Resolution, Volts};
use std::fmt;

/// A quantizer transfer function: monotone transition levels plus the
/// conversion operation.
///
/// # Examples
///
/// ```
/// use bist_adc::transfer::TransferFunction;
/// use bist_adc::types::{Code, Resolution, Volts};
///
/// let tf = TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4));
/// assert_eq!(tf.convert(Volts(-1.0)), Code(0)); // clamps low
/// assert_eq!(tf.convert(Volts(0.15)), Code(1));
/// assert_eq!(tf.convert(Volts(99.0)), Code(63)); // clamps high
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransferFunction {
    resolution: Resolution,
    low: Volts,
    high: Volts,
    /// Transition levels in volts, index 0 holds `T[1]`.
    transitions: Vec<f64>,
}

impl TransferFunction {
    /// Builds the ideal uniform transfer over `[low, high]`:
    /// `T[k] = low + k·q` with `q = (high−low)/2ⁿ`.
    ///
    /// The first transition is one full LSB above `low` (mid-rise
    /// convention used by the paper's Figure 3).
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn ideal(resolution: Resolution, low: Volts, high: Volts) -> Self {
        assert!(low.0 < high.0, "low must be below high");
        let q = (high.0 - low.0) / resolution.code_count() as f64;
        let transitions = (1..=resolution.transition_count())
            .map(|k| low.0 + k as f64 * q)
            .collect();
        TransferFunction {
            resolution,
            low,
            high,
            transitions,
        }
    }

    /// Builds a transfer function from explicit transition levels
    /// (volts). The levels need not be uniform but must be sorted
    /// (non-decreasing) — converters whose raw levels may be disordered
    /// should sort first (see `FlashAdc`).
    ///
    /// # Panics
    ///
    /// Panics if the number of levels is not `2ⁿ − 1`, if any level is
    /// not finite, or if the levels are not non-decreasing.
    pub fn from_transitions(
        resolution: Resolution,
        low: Volts,
        high: Volts,
        transitions: Vec<f64>,
    ) -> Self {
        assert_eq!(
            transitions.len(),
            resolution.transition_count() as usize,
            "expected {} transition levels",
            resolution.transition_count()
        );
        assert!(
            transitions.iter().all(|t| t.is_finite()),
            "transition levels must be finite"
        );
        assert!(
            transitions.windows(2).all(|w| w[0] <= w[1]),
            "transition levels must be non-decreasing"
        );
        assert!(low.0 < high.0, "low must be below high");
        TransferFunction {
            resolution,
            low,
            high,
            transitions,
        }
    }

    /// The converter resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Lower end of the nominal input range.
    pub fn low(&self) -> Volts {
        self.low
    }

    /// Upper end of the nominal input range.
    pub fn high(&self) -> Volts {
        self.high
    }

    /// The ideal LSB size `q = (high − low)/2ⁿ`.
    pub fn lsb_size(&self) -> Volts {
        Volts((self.high.0 - self.low.0) / self.resolution.code_count() as f64)
    }

    /// The transition level `T[k]` for `k` in `1..=2ⁿ−1`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn transition(&self, k: u32) -> Volts {
        assert!(
            (1..=self.resolution.transition_count()).contains(&k),
            "transition index {k} out of range 1..={}",
            self.resolution.transition_count()
        );
        Volts(self.transitions[(k - 1) as usize])
    }

    /// All transition levels in volts (`T[1]` first).
    pub fn transitions(&self) -> &[f64] {
        &self.transitions
    }

    /// Converts an input voltage to an output code (count of transition
    /// levels at or below `v`; clamps at the range ends by construction).
    pub fn convert(&self, v: Volts) -> Code {
        // Binary search for the partition point: number of transitions <= v.
        let count = self.transitions.partition_point(|&t| t <= v.0);
        Code(count as u32)
    }

    /// The width of inner code `k` (`1..=2ⁿ−2`) in volts:
    /// `T[k+1] − T[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not an inner code.
    pub fn code_width(&self, k: u32) -> Volts {
        assert!(
            (1..=self.resolution.inner_code_count()).contains(&k),
            "code {k} is not an inner code"
        );
        Volts(self.transitions[k as usize] - self.transitions[(k - 1) as usize])
    }

    /// Widths of all inner codes in LSB units (the `ΔV` of the paper's
    /// §3, ideally 1 LSB each).
    pub fn code_widths_lsb(&self) -> Vec<Lsb> {
        let q = self.lsb_size().0;
        self.transitions
            .windows(2)
            .map(|w| Lsb((w[1] - w[0]) / q))
            .collect()
    }

    /// Offsets every transition level by `delta` volts (models an input
    /// offset error).
    pub fn with_offset(mut self, delta: Volts) -> Self {
        for t in &mut self.transitions {
            *t += delta.0;
        }
        self
    }

    /// Scales every transition level about `low` by `gain` (models a gain
    /// error).
    ///
    /// # Panics
    ///
    /// Panics if `gain <= 0` (which would fold the transfer).
    pub fn with_gain(mut self, gain: f64) -> Self {
        assert!(gain > 0.0, "gain must be positive");
        let low = self.low.0;
        for t in &mut self.transitions {
            *t = low + (*t - low) * gain;
        }
        self
    }
}

impl fmt::Display for TransferFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} transfer over [{}, {}]",
            self.resolution, self.low, self.high
        )
    }
}

/// Anything that converts voltages to codes — behavioural converters and
/// fault-injection decorators implement this.
///
/// Implementations must be pure (no internal state mutation); noise is
/// injected by the acquisition layer so that experiments stay
/// reproducible under seeded RNGs.
pub trait Adc {
    /// The converter resolution.
    fn resolution(&self) -> Resolution;

    /// Converts an input voltage to an output code.
    fn convert(&self, v: Volts) -> Code;

    /// The nominal input range `(low, high)`.
    fn input_range(&self) -> (Volts, Volts);

    /// The converter's static transfer function, if it can be stated
    /// exactly. Behavioural models return `Some`; opaque/fault-wrapped
    /// models may return `None` and be characterised by sweeping.
    fn transfer(&self) -> Option<TransferFunction> {
        None
    }

    /// The sorted transition levels backing [`convert`](Self::convert),
    /// when the converter can expose them without materialising a new
    /// transfer function (i.e. without allocating).
    ///
    /// Whenever this returns `Some(levels)`, `convert(v)` must equal
    /// `Code(levels.partition_point(|&t| t <= v.0) as u32)` — batched
    /// engines rely on this to run an incremental cursor over the level
    /// array instead of a full binary search per sample. Converters whose
    /// conversion is not a pure threshold comparison (fault decorators,
    /// non-monotone models) keep the `None` default and are converted
    /// sample by sample.
    fn transition_levels(&self) -> Option<&[f64]> {
        None
    }
}

impl Adc for TransferFunction {
    fn resolution(&self) -> Resolution {
        self.resolution
    }

    fn convert(&self, v: Volts) -> Code {
        TransferFunction::convert(self, v)
    }

    fn input_range(&self) -> (Volts, Volts) {
        (self.low, self.high)
    }

    fn transfer(&self) -> Option<TransferFunction> {
        Some(self.clone())
    }

    fn transition_levels(&self) -> Option<&[f64]> {
        Some(&self.transitions)
    }
}

impl<T: Adc + ?Sized> Adc for &T {
    fn resolution(&self) -> Resolution {
        (**self).resolution()
    }

    fn convert(&self, v: Volts) -> Code {
        (**self).convert(v)
    }

    fn input_range(&self) -> (Volts, Volts) {
        (**self).input_range()
    }

    fn transfer(&self) -> Option<TransferFunction> {
        (**self).transfer()
    }

    fn transition_levels(&self) -> Option<&[f64]> {
        (**self).transition_levels()
    }
}

/// Characterises any [`Adc`] by a fine voltage sweep, recovering its
/// transition levels to within `step` volts.
///
/// Useful for models that cannot state their transfer analytically
/// (e.g. fault-wrapped converters). Non-monotonic converters are
/// linearised by the sweep: the recovered level for transition `k` is the
/// first voltage at which the output reaches code `k`.
///
/// # Panics
///
/// Panics if `step` is not positive.
pub fn characterize<A: Adc>(adc: &A, step: Volts) -> TransferFunction {
    assert!(step.0 > 0.0, "sweep step must be positive");
    let (low, high) = adc.input_range();
    let res = adc.resolution();
    let mut transitions = Vec::with_capacity(res.transition_count() as usize);
    let mut v = low.0 - step.0;
    let mut best = adc.convert(Volts(v)).0;
    let margin = (high.0 - low.0) * 0.1;
    while v <= high.0 + margin && transitions.len() < res.transition_count() as usize {
        let code = adc.convert(Volts(v)).0;
        while best < code && transitions.len() < res.transition_count() as usize {
            best += 1;
            transitions.push(v);
        }
        v += step.0;
    }
    // Any transitions never reached (e.g. stuck top codes) sit above the
    // range. The nominal [low, high] is preserved so the LSB size (and
    // hence DNL/INL) of the recovered transfer matches the original.
    while transitions.len() < res.transition_count() as usize {
        transitions.push(high.0 + margin);
    }
    TransferFunction::from_transitions(res, low, high, transitions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn six_bit() -> TransferFunction {
        TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
    }

    #[test]
    fn ideal_transitions_are_uniform() {
        let tf = six_bit();
        assert_eq!(tf.transitions().len(), 63);
        assert!((tf.transition(1).0 - 0.1).abs() < 1e-12);
        assert!((tf.transition(63).0 - 6.3).abs() < 1e-12);
        for w in tf.code_widths_lsb() {
            assert!((w.0 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn convert_steps_at_transitions() {
        let tf = six_bit();
        assert_eq!(tf.convert(Volts(0.0999)), Code(0));
        assert_eq!(tf.convert(Volts(0.1)), Code(1));
        assert_eq!(tf.convert(Volts(0.1999)), Code(1));
        assert_eq!(tf.convert(Volts(3.2)), Code(32));
    }

    #[test]
    fn convert_clamps_out_of_range() {
        let tf = six_bit();
        assert_eq!(tf.convert(Volts(-100.0)), Code(0));
        assert_eq!(tf.convert(Volts(100.0)), Code(63));
    }

    #[test]
    fn ramp_sweep_visits_every_code_once() {
        let tf = six_bit();
        let mut seen = [false; 64];
        let mut v = -0.05;
        while v < 6.5 {
            seen[tf.convert(Volts(v)).0 as usize] = true;
            v += 0.01;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn code_width_matches_transition_difference() {
        let tf = six_bit();
        for k in 1..=62 {
            let w = tf.code_width(k);
            assert!((w.0 - 0.1).abs() < 1e-12, "code {k}: {w}");
        }
    }

    #[test]
    #[should_panic(expected = "not an inner code")]
    fn code_width_of_end_code_panics() {
        six_bit().code_width(0);
    }

    #[test]
    #[should_panic(expected = "not an inner code")]
    fn code_width_of_top_code_panics() {
        six_bit().code_width(63);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn transition_index_zero_panics() {
        six_bit().transition(0);
    }

    #[test]
    fn from_transitions_validation() {
        let r = Resolution::new(2).unwrap();
        // 3 levels required.
        let tf = TransferFunction::from_transitions(r, Volts(0.0), Volts(4.0), vec![1.0, 2.0, 3.0]);
        assert_eq!(tf.convert(Volts(2.5)), Code(2));
    }

    #[test]
    #[should_panic(expected = "expected 3 transition levels")]
    fn from_transitions_wrong_count_panics() {
        let r = Resolution::new(2).unwrap();
        TransferFunction::from_transitions(r, Volts(0.0), Volts(4.0), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_transitions_unsorted_panics() {
        let r = Resolution::new(2).unwrap();
        TransferFunction::from_transitions(r, Volts(0.0), Volts(4.0), vec![2.0, 1.0, 3.0]);
    }

    #[test]
    fn equal_transitions_make_missing_code() {
        let r = Resolution::new(2).unwrap();
        let tf = TransferFunction::from_transitions(r, Volts(0.0), Volts(4.0), vec![1.0, 2.0, 2.0]);
        // Code 2 has zero width: input 2.0 jumps straight to code 3.
        assert_eq!(tf.convert(Volts(1.99)), Code(1));
        assert_eq!(tf.convert(Volts(2.0)), Code(3));
        assert_eq!(tf.code_width(2).0, 0.0);
    }

    #[test]
    fn offset_shifts_all_transitions() {
        let tf = six_bit().with_offset(Volts(0.05));
        assert!((tf.transition(1).0 - 0.15).abs() < 1e-12);
        assert_eq!(tf.convert(Volts(0.1)), Code(0)); // moved up
    }

    #[test]
    fn gain_scales_about_low() {
        let tf = six_bit().with_gain(2.0);
        assert!((tf.transition(1).0 - 0.2).abs() < 1e-12);
        assert!((tf.transition(2).0 - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gain must be positive")]
    fn gain_rejects_non_positive() {
        six_bit().with_gain(0.0);
    }

    #[test]
    fn adc_trait_on_transfer_function() {
        let tf = six_bit();
        let adc: &dyn Adc = &tf;
        assert_eq!(adc.resolution().bits(), 6);
        assert_eq!(adc.convert(Volts(3.2)), Code(32));
        assert!(adc.transfer().is_some());
    }

    #[test]
    fn characterize_recovers_ideal_transitions() {
        let tf = six_bit();
        let rec = characterize(&tf, Volts(0.0005));
        for k in 1..=63 {
            let err = (rec.transition(k).0 - tf.transition(k).0).abs();
            assert!(err <= 0.0006, "transition {k}: err {err}");
        }
    }

    #[test]
    fn display_mentions_range() {
        assert!(six_bit().to_string().contains("6-bit"));
    }
}
