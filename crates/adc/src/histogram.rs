#![allow(clippy::needless_range_loop)] // index loops mirror the maths/netlists
//! Code-density (histogram) tests — the conventional production test the
//! paper's BIST is benchmarked against.
//!
//! §4: *"The quality of the conventional test, where 4096 samples are
//! taken for the test of all the codes, can be compared to the BIST with
//! a 7-bit counter."* The ramp histogram here is that conventional test;
//! the sine histogram (Doernberg) is included as the other standard
//! flavour.

use crate::sampler::Capture;
use crate::types::{Code, Lsb, Resolution};
use std::error::Error;
use std::fmt;

/// Per-code occurrence counts for an `n`-bit capture.
///
/// # Examples
///
/// ```
/// use bist_adc::histogram::CodeHistogram;
/// use bist_adc::types::{Code, Resolution};
///
/// let mut h = CodeHistogram::new(Resolution::SIX_BIT);
/// h.record(Code(3));
/// h.record(Code(3));
/// assert_eq!(h.count(Code(3)), 2);
/// assert_eq!(h.total(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeHistogram {
    resolution: Resolution,
    counts: Vec<u64>,
}

impl CodeHistogram {
    /// Creates an empty histogram for the given resolution.
    pub fn new(resolution: Resolution) -> Self {
        CodeHistogram {
            resolution,
            counts: vec![0; resolution.code_count() as usize],
        }
    }

    /// Builds a histogram by draining a code stream — the single-pass
    /// accumulation used by the streaming harnesses (no capture is
    /// materialised).
    ///
    /// # Panics
    ///
    /// Panics if any code exceeds the resolution's maximum code.
    pub fn from_codes<I: IntoIterator<Item = Code>>(resolution: Resolution, codes: I) -> Self {
        let mut h = CodeHistogram::new(resolution);
        for c in codes {
            h.record(c);
        }
        h
    }

    /// Builds a histogram from a materialised capture.
    ///
    /// # Panics
    ///
    /// Panics if any code exceeds the resolution's maximum code.
    pub fn from_capture(resolution: Resolution, capture: &Capture) -> Self {
        CodeHistogram::from_codes(resolution, capture.codes().iter().copied())
    }

    /// Records one code occurrence.
    ///
    /// # Panics
    ///
    /// Panics if `code` exceeds the maximum code.
    pub fn record(&mut self, code: Code) {
        assert!(
            code.0 <= self.resolution.max_code().0,
            "code {code} exceeds {}",
            self.resolution.max_code()
        );
        self.counts[code.0 as usize] += 1;
    }

    /// The resolution this histogram was built for.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Occurrences of `code`.
    ///
    /// # Panics
    ///
    /// Panics if `code` exceeds the maximum code.
    pub fn count(&self, code: Code) -> u64 {
        self.counts[code.0 as usize]
    }

    /// All counts, indexed by code.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total samples on inner codes only.
    pub fn inner_total(&self) -> u64 {
        let n = self.counts.len();
        if n <= 2 {
            0
        } else {
            self.counts[1..n - 1].iter().sum()
        }
    }
}

/// Error from a histogram linearity estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HistogramTestError {
    /// An inner code received no hits, so DNL is undefined (the stimulus
    /// did not cover the range or too few samples were taken). Carries
    /// the first empty code.
    EmptyInnerCode(Code),
    /// The capture had no inner-code samples at all.
    NoInnerSamples,
}

impl fmt::Display for HistogramTestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistogramTestError::EmptyInnerCode(c) => {
                write!(f, "inner code {c} received no samples")
            }
            HistogramTestError::NoInnerSamples => {
                f.write_str("capture contains no inner-code samples")
            }
        }
    }
}

impl Error for HistogramTestError {}

/// Result of a histogram linearity test.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramLinearity {
    /// DNL per inner code, in LSB.
    pub dnl: Vec<Lsb>,
    /// INL per inner-code boundary (accumulated DNL), in LSB.
    pub inl: Vec<Lsb>,
    /// Average samples per inner code — the measurement resolution
    /// driver (more samples → finer width quantisation).
    pub samples_per_code: f64,
}

impl HistogramLinearity {
    /// Worst-case |DNL| in LSB.
    pub fn peak_dnl(&self) -> Lsb {
        Lsb(self.dnl.iter().map(|d| d.0.abs()).fold(0.0, f64::max))
    }

    /// Worst-case |INL| in LSB.
    pub fn peak_inl(&self) -> Lsb {
        Lsb(self.inl.iter().map(|d| d.0.abs()).fold(0.0, f64::max))
    }
}

/// Ramp (uniform-density) histogram linearity estimate.
///
/// With a linear ramp every code ideally collects the same number of
/// samples; `DNL[k] = count[k]/mean_count − 1`. End codes are excluded
/// (their width is unbounded). Missing codes (zero hits) are reported as
/// DNL −1 rather than an error, matching production practice, as long as
/// at least one of their neighbours was hit; a fully empty histogram is
/// an error.
///
/// # Errors
///
/// Returns [`HistogramTestError::NoInnerSamples`] when no inner code was
/// hit at all.
pub fn ramp_linearity(hist: &CodeHistogram) -> Result<HistogramLinearity, HistogramTestError> {
    let inner_total = hist.inner_total();
    if inner_total == 0 {
        return Err(HistogramTestError::NoInnerSamples);
    }
    let n = hist.counts().len();
    let inner = &hist.counts()[1..n - 1];
    let mean = inner_total as f64 / inner.len() as f64;
    let dnl: Vec<Lsb> = inner.iter().map(|&c| Lsb(c as f64 / mean - 1.0)).collect();
    let inl = crate::metrics::inl_from_dnl(&dnl);
    Ok(HistogramLinearity {
        dnl,
        inl,
        samples_per_code: mean,
    })
}

/// Sine (arcsine-density) histogram linearity estimate, after Doernberg.
///
/// The expected density under a full-scale sine of amplitude `A` and
/// offset `O` is arcsine-shaped; each code's expected probability is
/// `p[k] = (asin(u[k+1]) − asin(u[k]))/π` with
/// `u = (edge − O)/A`. The stimulus amplitude/offset are estimated from
/// the end-code counts, then `DNL[k] = count[k]/(total·p[k]) − 1`.
///
/// # Errors
///
/// Returns [`HistogramTestError::NoInnerSamples`] for an empty inner
/// histogram or [`HistogramTestError::EmptyInnerCode`] if the estimated
/// stimulus leaves an inner code with zero expected probability.
pub fn sine_linearity(
    hist: &CodeHistogram,
    full_scale_low: f64,
    full_scale_high: f64,
) -> Result<HistogramLinearity, HistogramTestError> {
    let counts = hist.counts();
    let n = counts.len();
    let total: u64 = hist.total();
    if hist.inner_total() == 0 {
        return Err(HistogramTestError::NoInnerSamples);
    }
    let q = (full_scale_high - full_scale_low) / n as f64;

    // Estimate amplitude and offset from the cumulative end-code
    // probabilities (Doernberg's method): the fraction of samples at or
    // below code 0 pins where the sine spends time below T[1].
    let p_low = counts[0] as f64 / total as f64;
    let p_high = counts[n - 1] as f64 / total as f64;
    let t1 = full_scale_low + q; // first transition
    let t_last = full_scale_high - q; // last transition
    let c_low = (std::f64::consts::PI * p_low).cos();
    let c_high = (std::f64::consts::PI * p_high).cos();
    // t1 = O - A·c_low ; t_last = O + A·c_high
    let amplitude = (t_last - t1) / (c_low + c_high);
    let offset = t1 + amplitude * c_low;

    let edge = |k: usize| full_scale_low + (k as f64 + 1.0) * q;
    let asin_clamped = |x: f64| x.clamp(-1.0, 1.0).asin();
    let mut dnl = Vec::with_capacity(n - 2);
    for k in 1..n - 1 {
        let u_lo = (edge(k - 1) - offset) / amplitude;
        let u_hi = (edge(k) - offset) / amplitude;
        let p = (asin_clamped(u_hi) - asin_clamped(u_lo)) / std::f64::consts::PI;
        if p <= 0.0 {
            return Err(HistogramTestError::EmptyInnerCode(Code(k as u32)));
        }
        dnl.push(Lsb(counts[k] as f64 / (total as f64 * p) - 1.0));
    }
    let inl = crate::metrics::inl_from_dnl(&dnl);
    let samples_per_code = hist.inner_total() as f64 / (n - 2) as f64;
    Ok(HistogramLinearity {
        dnl,
        inl,
        samples_per_code,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{acquire, SamplingConfig};
    use crate::signal::{Ramp, SineWave};
    use crate::transfer::TransferFunction;
    use crate::types::{Resolution, Volts};

    fn ideal() -> TransferFunction {
        TransferFunction::ideal(Resolution::SIX_BIT, Volts(0.0), Volts(6.4))
    }

    fn skewed() -> TransferFunction {
        // Code 10 is 1.5 LSB wide, code 11 is 0.5 LSB wide.
        let mut t: Vec<f64> = (1..=63).map(|k| k as f64 * 0.1).collect();
        t[10] += 0.05; // T[11] moves up: widens code 10, narrows code 11
        TransferFunction::from_transitions(Resolution::SIX_BIT, Volts(0.0), Volts(6.4), t)
    }

    #[test]
    fn histogram_records_and_counts() {
        let mut h = CodeHistogram::new(Resolution::SIX_BIT);
        h.record(Code(0));
        h.record(Code(63));
        h.record(Code(5));
        assert_eq!(h.total(), 3);
        assert_eq!(h.inner_total(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn histogram_rejects_oversized_code() {
        let mut h = CodeHistogram::new(Resolution::SIX_BIT);
        h.record(Code(64));
    }

    #[test]
    fn ramp_histogram_ideal_dnl_near_zero() {
        let adc = ideal();
        // 1000 samples/code on average.
        let ramp = Ramp::new(Volts(-0.05), 1.0);
        let cap = acquire(&adc, &ramp, SamplingConfig::new(1e4, 65_000));
        let h = CodeHistogram::from_capture(Resolution::SIX_BIT, &cap);
        let lin = ramp_linearity(&h).unwrap();
        assert!(lin.peak_dnl().0 < 0.01, "peak dnl {}", lin.peak_dnl().0);
        assert!((lin.samples_per_code - 1000.0).abs() < 30.0);
    }

    #[test]
    fn ramp_histogram_detects_skewed_widths() {
        let adc = skewed();
        let ramp = Ramp::new(Volts(-0.05), 1.0);
        let cap = acquire(&adc, &ramp, SamplingConfig::new(1e4, 65_000));
        let h = CodeHistogram::from_capture(Resolution::SIX_BIT, &cap);
        let lin = ramp_linearity(&h).unwrap();
        // Inner-code index 9 == code 10.
        assert!(
            (lin.dnl[9].0 - 0.5).abs() < 0.05,
            "dnl[10] {}",
            lin.dnl[9].0
        );
        assert!(
            (lin.dnl[10].0 + 0.5).abs() < 0.05,
            "dnl[11] {}",
            lin.dnl[10].0
        );
        // INL returns to ~0 after the compensating pair.
        assert!(lin.inl[11].0.abs() < 0.05);
    }

    #[test]
    fn ramp_histogram_missing_code_is_minus_one() {
        let mut t: Vec<f64> = (1..=63).map(|k| k as f64 * 0.1).collect();
        t[10] = t[9]; // code 10 has zero width
        let adc =
            TransferFunction::from_transitions(Resolution::SIX_BIT, Volts(0.0), Volts(6.4), t);
        let ramp = Ramp::new(Volts(-0.05), 1.0);
        let cap = acquire(&adc, &ramp, SamplingConfig::new(1e4, 65_000));
        let h = CodeHistogram::from_capture(Resolution::SIX_BIT, &cap);
        let lin = ramp_linearity(&h).unwrap();
        assert!((lin.dnl[9].0 + 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_histogram_is_error() {
        let h = CodeHistogram::new(Resolution::SIX_BIT);
        assert_eq!(
            ramp_linearity(&h).unwrap_err(),
            HistogramTestError::NoInnerSamples
        );
    }

    #[test]
    fn sine_histogram_ideal_dnl_near_zero() {
        let adc = ideal();
        // Slight over-range sine, non-coherent frequency, many samples.
        let sine = SineWave::new(3.3, 101.0 / 65536.0 * 1e4, 0.1, Volts(3.2));
        let cap = acquire(&adc, &sine, SamplingConfig::new(1e4, 262_144));
        let h = CodeHistogram::from_capture(Resolution::SIX_BIT, &cap);
        let lin = sine_linearity(&h, 0.0, 6.4).unwrap();
        assert!(lin.peak_dnl().0 < 0.08, "peak dnl {}", lin.peak_dnl().0);
    }

    #[test]
    fn sine_histogram_detects_wide_code() {
        let adc = skewed();
        let sine = SineWave::new(3.3, 101.0 / 65536.0 * 1e4, 0.1, Volts(3.2));
        let cap = acquire(&adc, &sine, SamplingConfig::new(1e4, 262_144));
        let h = CodeHistogram::from_capture(Resolution::SIX_BIT, &cap);
        let lin = sine_linearity(&h, 0.0, 6.4).unwrap();
        assert!((lin.dnl[9].0 - 0.5).abs() < 0.1, "dnl[10] {}", lin.dnl[9].0);
    }

    #[test]
    fn sine_histogram_empty_is_error() {
        let h = CodeHistogram::new(Resolution::SIX_BIT);
        assert!(sine_linearity(&h, 0.0, 6.4).is_err());
    }

    #[test]
    fn histogram_linearity_peaks() {
        let lin = HistogramLinearity {
            dnl: vec![Lsb(0.2), Lsb(-0.6)],
            inl: vec![Lsb(0.2), Lsb(-0.4)],
            samples_per_code: 10.0,
        };
        assert_eq!(lin.peak_dnl().0, 0.6);
        assert_eq!(lin.peak_inl().0, 0.4);
    }

    #[test]
    fn error_display() {
        assert!(HistogramTestError::EmptyInnerCode(Code(3))
            .to_string()
            .contains("3"));
        assert!(HistogramTestError::NoInnerSamples
            .to_string()
            .contains("no inner"));
    }
}
